// Package factorized implements learning over joins without materializing
// them, reproducing the technique of Orion (Kumar et al., SIGMOD'15) and F
// (Schleich et al., SIGMOD'16) that the paper surveys, generalized from star
// schemas to arbitrary acyclic join trees (snowflakes) à la F/LMFAO: the
// linear-algebra primitives a generalized linear model needs (X·w, xᵀ·X,
// XᵀX) are pushed through the PK–FK structure as partial aggregates — partial
// products per relation, group-sums along each edge, co-occurrence counting
// arrays for cross blocks — so the per-iteration cost scales with
// Σ|R_v|·d_v plus one pass per edge instead of |join|·Σd_v.
package factorized

import (
	"fmt"

	"dmml/internal/la"
)

// Design is a normalized design matrix over a one-level star schema: fact
// table features plus K foreign-key-linked dimension tables. It is the
// single-depth special case of JoinTree (which it embeds), kept as the
// star-shaped constructor the planner and experiments speak.
type Design struct {
	*JoinTree
	fact *la.Dense
	fks  [][]int
	dims []*la.Dense
}

// NewDesign validates and assembles a factorized star design. Every fks[k]
// must have one entry per fact row, in range for dims[k].
func NewDesign(fact *la.Dense, fks [][]int, dims []*la.Dense) (*Design, error) {
	if fact == nil {
		return nil, fmt.Errorf("factorized: nil fact matrix")
	}
	if len(fks) != len(dims) {
		return nil, fmt.Errorf("factorized: %d fk columns for %d dimension tables", len(fks), len(dims))
	}
	n := fact.Rows()
	nodes := make([]Node, 1, 1+len(dims))
	nodes[0] = Node{X: fact}
	edges := make([]Edge, 0, len(dims))
	for k := range dims {
		if dims[k] == nil {
			return nil, fmt.Errorf("factorized: nil dimension table %d", k)
		}
		if len(fks[k]) != n {
			return nil, fmt.Errorf("factorized: fk column %d has %d entries for %d fact rows", k, len(fks[k]), n)
		}
		nk := dims[k].Rows()
		for i, r := range fks[k] {
			if r < 0 || r >= nk {
				return nil, fmt.Errorf("factorized: fk %d row %d references dim row %d (table has %d)", k, i, r, nk)
			}
		}
		nodes = append(nodes, Node{X: dims[k]})
		edges = append(edges, Edge{Parent: 0, Child: k + 1, FK: fks[k]})
	}
	t, err := NewJoinTree(nodes, edges)
	if err != nil {
		return nil, err
	}
	return &Design{JoinTree: t, fact: fact, fks: fks, dims: dims}, nil
}

// NumDims returns the number of dimension tables.
func (d *Design) NumDims() int { return len(d.dims) }
