// Package factorized implements learning over joins without materializing
// them, reproducing the technique of Orion (Kumar et al., SIGMOD'15) and F
// (Schleich et al., SIGMOD'16) that the paper surveys: for a star schema
// S ⋉ R₁ ⋉ … ⋉ R_K, the linear-algebra primitives a generalized linear model
// needs (X·w, xᵀ·X, XᵀX) are pushed through the foreign-key structure so the
// per-iteration cost scales with |S|·d_S + Σ|R_k|·d_k instead of
// |S|·(d_S + Σd_k).
package factorized

import (
	"fmt"

	"dmml/internal/la"
)

// Design is a normalized design matrix: fact-table features plus K
// foreign-key-linked dimension tables. The logical (materialized) design
// matrix is [FactX | DimX₁[fk₁] | … | DimX_K[fk_K]].
type Design struct {
	fact    *la.Dense
	fks     [][]int
	dims    []*la.Dense
	n       int
	total   int
	offsets []int // column offset of each dimension block in the joined view
}

// NewDesign validates and assembles a factorized design matrix. Every fks[k]
// must have one entry per fact row, in range for dims[k].
func NewDesign(fact *la.Dense, fks [][]int, dims []*la.Dense) (*Design, error) {
	if fact == nil {
		return nil, fmt.Errorf("factorized: nil fact matrix")
	}
	if len(fks) != len(dims) {
		return nil, fmt.Errorf("factorized: %d fk columns for %d dimension tables", len(fks), len(dims))
	}
	n, dS := fact.Dims()
	d := &Design{fact: fact, fks: fks, dims: dims, n: n}
	d.total = dS
	for k := range dims {
		if dims[k] == nil {
			return nil, fmt.Errorf("factorized: nil dimension table %d", k)
		}
		if len(fks[k]) != n {
			return nil, fmt.Errorf("factorized: fk column %d has %d entries for %d fact rows", k, len(fks[k]), n)
		}
		nk, _ := dims[k].Dims()
		for i, r := range fks[k] {
			if r < 0 || r >= nk {
				return nil, fmt.Errorf("factorized: fk %d row %d references dim row %d (table has %d)", k, i, r, nk)
			}
		}
		d.offsets = append(d.offsets, d.total)
		d.total += dims[k].Cols()
	}
	return d, nil
}

// Rows implements opt.BulkData: the number of joined (fact) rows.
func (d *Design) Rows() int { return d.n }

// Cols implements opt.BulkData: the width of the joined feature vector.
func (d *Design) Cols() int { return d.total }

// NumDims returns the number of dimension tables.
func (d *Design) NumDims() int { return len(d.dims) }

// factPart returns the slice of w covering the fact block.
func (d *Design) factPart(w []float64) []float64 { return w[:d.fact.Cols()] }

// dimPart returns the slice of w covering dimension block k.
func (d *Design) dimPart(w []float64, k int) []float64 {
	lo := d.offsets[k]
	return w[lo : lo+d.dims[k].Cols()]
}

// MatVec computes the joined X·w factorized: each dimension contributes
// through a |R_k|-sized partial-product table gathered via the fk column.
func (d *Design) MatVec(w []float64) []float64 {
	if len(w) != d.total {
		panic(fmt.Sprintf("factorized: MatVec weight length %d, want %d", len(w), d.total))
	}
	out := la.MatVec(d.fact, d.factPart(w))
	for k := range d.dims {
		partial := la.MatVec(d.dims[k], d.dimPart(w, k)) // |R_k| inner products
		fk := d.fks[k]
		for i := range out {
			out[i] += partial[fk[i]]
		}
	}
	return out
}

// VecMat computes the joined xᵀ·X factorized: per dimension, x is first
// group-summed by foreign key (one pass over the fact table), then a single
// |R_k|-sized vector–matrix product finishes the block.
func (d *Design) VecMat(x []float64) []float64 {
	if len(x) != d.n {
		panic(fmt.Sprintf("factorized: VecMat length %d, want %d rows", len(x), d.n))
	}
	out := make([]float64, d.total)
	copy(out, la.VecMat(x, d.fact))
	for k := range d.dims {
		nk := d.dims[k].Rows()
		grouped := make([]float64, nk)
		for i, r := range d.fks[k] {
			grouped[r] += x[i]
		}
		blk := la.VecMat(grouped, d.dims[k])
		copy(out[d.offsets[k]:], blk)
	}
	return out
}

// Gram computes the joined XᵀX without materializing the join (the F-style
// factorized normal equations):
//
//	S·S block     — Gram of the fact features;
//	S·R_k blocks  — fact features group-summed by fk, then one d_S×d_k
//	                product against R_k;
//	R_k·R_k block — R_k rows weighted by fk multiplicities;
//	R_k·R_l block — co-occurrence counts of (fk_k, fk_l) pairs, then a
//	                count-weighted sum of dim-row outer products.
func (d *Design) Gram() *la.Dense {
	out := la.NewDense(d.total, d.total)
	dS := d.fact.Cols()

	// S·S block.
	setBlock(out, 0, 0, la.Gram(d.fact))

	for k := range d.dims {
		nk := d.dims[k].Rows()
		dk := d.dims[k].Cols()
		fk := d.fks[k]

		// Group-sum fact rows by fk value: G is nk × dS.
		grouped := la.NewDense(nk, dS)
		counts := make([]float64, nk)
		for i, r := range fk {
			la.Axpy(1, d.fact.RowView(i), grouped.RowView(r))
			counts[r]++
		}
		// S·R_k block: groupedᵀ · R_k  (dS × dk).
		cross := la.MatMul(grouped.T(), d.dims[k])
		setBlock(out, 0, d.offsets[k], cross)
		setBlock(out, d.offsets[k], 0, cross.T())

		// R_k·R_k block: Σ_r counts[r] · row_r ⊗ row_r.
		diag := la.NewDense(dk, dk)
		for r := 0; r < nk; r++ {
			if counts[r] == 0 {
				continue
			}
			la.OuterAdd(diag, counts[r], d.dims[k].RowView(r), d.dims[k].RowView(r))
		}
		setBlock(out, d.offsets[k], d.offsets[k], diag)

		// R_k·R_l blocks for l > k via pair co-occurrence counts.
		for l := k + 1; l < len(d.dims); l++ {
			nl := d.dims[l].Rows()
			fl := d.fks[l]
			pair := make(map[int64]float64)
			for i := range fk {
				pair[int64(fk[i])*int64(nl)+int64(fl[i])]++
			}
			blk := la.NewDense(dk, d.dims[l].Cols())
			for key, c := range pair {
				r := int(key / int64(nl))
				s := int(key % int64(nl))
				la.OuterAdd(blk, c, d.dims[k].RowView(r), d.dims[l].RowView(s))
			}
			setBlock(out, d.offsets[k], d.offsets[l], blk)
			setBlock(out, d.offsets[l], d.offsets[k], blk.T())
		}
	}
	return out
}

// XtY computes Xᵀy factorized (an alias of VecMat, named for the normal
// equations use case).
func (d *Design) XtY(y []float64) []float64 { return d.VecMat(y) }

// Materialize produces the joined dense design matrix (the baseline input).
func (d *Design) Materialize() *la.Dense {
	out := la.NewDense(d.n, d.total)
	for i := 0; i < d.n; i++ {
		row := out.RowView(i)
		copy(row, d.fact.RowView(i))
		for k := range d.dims {
			copy(row[d.offsets[k]:], d.dims[k].RowView(d.fks[k][i]))
		}
	}
	return out
}

// setBlock copies src into dst at (r0, c0).
func setBlock(dst *la.Dense, r0, c0 int, src *la.Dense) {
	rows, cols := src.Dims()
	for i := 0; i < rows; i++ {
		copy(dst.RowView(r0 + i)[c0:c0+cols], src.RowView(i))
	}
}

// FlopsPerMatVec estimates the floating-point work of one factorized
// X·w + xᵀ·X pair, the quantity the cost-based planner compares against the
// materialized estimate.
func (d *Design) FlopsPerMatVec() float64 {
	f := 2 * float64(d.n) * float64(d.fact.Cols())
	for k := range d.dims {
		f += 2 * float64(d.dims[k].Rows()) * float64(d.dims[k].Cols()) // partial products
		f += 2 * float64(d.n)                                          // gather/group
	}
	return f
}

// FlopsPerMatVecMaterialized estimates the same work over the joined matrix.
func (d *Design) FlopsPerMatVecMaterialized() float64 {
	return 2 * float64(d.n) * float64(d.total)
}

// Speedup is the predicted factorized-vs-materialized per-iteration ratio
// (>1 means factorized wins).
func (d *Design) Speedup() float64 {
	return d.FlopsPerMatVecMaterialized() / d.FlopsPerMatVec()
}
