package factorized

import (
	"fmt"

	"dmml/internal/la"
	"dmml/internal/pool"
)

// pushCutoff is the per-edge element count below which the gather/scatter
// passes stay serial: at ~2 flops per element, dispatch costs more than it
// saves (la's parallelThreshold at the same scale).
const pushCutoff = 1 << 16

// gramParCutoff is the scalar-work threshold for parallelizing a relation's
// weighted syrk.
const gramParCutoff = 1 << 18

// MatVecInto computes the joined X·w into dst (length Rows) and returns dst,
// implementing opt.BulkDataInto. Aggregates flow bottom-up: each relation's
// partial products X_v·w_v are computed at that relation's granularity, each
// child's table is gathered into its parent through the edge fk, and only
// the root pass runs at fact granularity. Steady state allocates nothing.
func (t *JoinTree) MatVecInto(dst, w []float64) []float64 {
	if len(w) != t.total {
		panic(fmt.Sprintf("factorized: MatVec weight length %d, want %d", len(w), t.total))
	}
	if len(dst) != t.nodes[0].rows {
		panic(fmt.Sprintf("factorized: MatVecInto dst length %d, want %d rows", len(dst), t.nodes[0].rows))
	}
	sw := mMatVecTimer.Start()
	mMatVecCalls.Inc()
	mFlopsPushdown.Add(int64(t.flopsFact / 2))
	mFlopsMaterialized.Add(int64(t.flopsMat / 2))
	accs := t.getAccs()
	accs[0] = dst
	// Reverse topological order: children are reduced before their parent
	// gathers them.
	for idx := len(t.order) - 1; idx >= 0; idx-- {
		v := t.order[idx]
		nd := &t.nodes[v]
		acc := accs[v]
		if acc == nil {
			acc = pool.GetF64(nd.rows)
			accs[v] = acc
		}
		if nd.cols > 0 {
			la.MatVecInto(acc, nd.x, w[nd.offset:nd.offset+nd.cols])
		} else {
			zeroF64(acc)
		}
		for _, c := range nd.children {
			gatherAdd(acc, accs[c], t.nodes[c].fk)
			pool.PutF64(accs[c])
			accs[c] = nil
		}
	}
	t.putAccs(accs)
	sw.Stop()
	return dst
}

// VecMatInto computes xᵀ·X into dst (length Cols) and returns dst,
// implementing opt.BulkDataInto. Aggregates flow top-down: x is group-summed
// through each edge so every relation sees a vector at its own granularity,
// finished by one |R_v|-sized vector–matrix product per relation. Steady
// state allocates nothing.
func (t *JoinTree) VecMatInto(dst, x []float64) []float64 {
	if len(x) != t.nodes[0].rows {
		panic(fmt.Sprintf("factorized: VecMat length %d, want %d rows", len(x), t.nodes[0].rows))
	}
	if len(dst) != t.total {
		panic(fmt.Sprintf("factorized: VecMatInto dst length %d, want %d", len(dst), t.total))
	}
	sw := mVecMatTimer.Start()
	mVecMatCalls.Inc()
	mFlopsPushdown.Add(int64(t.flopsFact / 2))
	mFlopsMaterialized.Add(int64(t.flopsMat / 2))
	groups := t.getAccs()
	groups[0] = x // borrowed: read-only, never released
	for _, v := range t.order {
		nd := &t.nodes[v]
		g := groups[v]
		if nd.cols > 0 {
			la.VecMatInto(dst[nd.offset:nd.offset+nd.cols], g, nd.x)
		}
		for _, c := range nd.children {
			gc := pool.GetF64Zeroed(t.nodes[c].rows)
			groups[c] = gc
			scatterAdd(gc, g, t.nodes[c].fk)
		}
		if v != 0 {
			pool.PutF64(g)
			groups[v] = nil
		}
	}
	t.putAccs(groups)
	sw.Stop()
	return dst
}

// MatVec computes the joined X·w into a fresh vector.
func (t *JoinTree) MatVec(w []float64) []float64 {
	return t.MatVecInto(make([]float64, t.nodes[0].rows), w)
}

// VecMat computes xᵀ·X into a fresh vector.
func (t *JoinTree) VecMat(x []float64) []float64 {
	return t.VecMatInto(make([]float64, t.total), x)
}

// XtY computes Xᵀy factorized (an alias of VecMat, named for the normal
// equations use case).
func (t *JoinTree) XtY(y []float64) []float64 { return t.VecMat(y) }

// XtYInto computes Xᵀy into dst (length Cols) and returns dst.
func (t *JoinTree) XtYInto(dst, y []float64) []float64 { return t.VecMatInto(dst, y) }

// Gram computes the joined XᵀX without materializing the join.
func (t *JoinTree) Gram() *la.Dense {
	return t.GramInto(la.NewDense(t.total, t.total))
}

// GramInto computes the joined XᵀX into out (Cols×Cols) and returns out —
// the F-style factorized normal equations generalized to trees:
//
//	counts        — each relation's join multiplicities, pushed top-down
//	                through the edges;
//	diagonal      — one count-weighted syrk per relation, at that
//	                relation's granularity;
//	cross blocks  — per pair, either a dense co-occurrence counting pass
//	                over the two key spaces (the count-sketch successor of
//	                the map-based star path) or a cnt-weighted feature push
//	                along the tree path, closed by one small product at the
//	                deeper relation's granularity.
//
// A relation joined through intermediate tables is never gathered at fact
// granularity, and the steady state allocates nothing.
func (t *JoinTree) GramInto(out *la.Dense) *la.Dense {
	if out.Rows() != t.total || out.Cols() != t.total {
		panic(fmt.Sprintf("factorized: GramInto %dx%d dst for %d cols", out.Rows(), out.Cols(), t.total))
	}
	sw := mGramTimer.Start()
	defer sw.Stop()
	mGramCalls.Inc()
	mFlopsPushdown.Add(int64(t.FlopsPerGram()))
	mFlopsMaterialized.Add(int64(t.FlopsPerGramMaterialized()))
	out.Zero()

	// Join multiplicities at every relation; cnts[0] stays nil (all ones).
	cnts := t.getAccs()
	for _, v := range t.order[1:] {
		nd := &t.nodes[v]
		c := pool.GetF64Zeroed(nd.rows)
		cnts[v] = c
		countScatterAccum(c, cnts[nd.parent], nd.fk, 0, t.nodes[nd.parent].rows)
	}

	// Diagonal blocks: count-weighted syrk per relation.
	for v := range t.nodes {
		nd := &t.nodes[v]
		if nd.cols == 0 {
			continue
		}
		acc := pool.GetF64Zeroed(nd.cols * nd.cols)
		gramWeighted(nd.x, cnts[v], acc)
		addBlockAt(out, nd.offset, nd.offset, acc, nd.cols, nd.cols)
		pool.PutF64(acc)
	}

	// Cross blocks, upper block triangle only.
	for i := range t.cross {
		t.crossBlockInto(&t.cross[i], cnts, out)
	}

	for _, v := range t.order[1:] {
		pool.PutF64(cnts[v])
		cnts[v] = nil
	}
	t.putAccs(cnts)

	// Mirror the upper triangle into the lower.
	raw := out.RawData()
	for i := 0; i < t.total; i++ {
		for j := 0; j < i; j++ {
			raw[i*t.total+j] = raw[j*t.total+i]
		}
	}
	return out
}

// crossBlockInto computes one off-diagonal block per its precomputed plan
// and adds it at (offset[u], offset[v]).
func (t *JoinTree) crossBlockInto(p *crossPlan, cnts [][]float64, out *la.Dense) {
	offU, offV := t.nodes[p.u].offset, t.nodes[p.v].offset
	if p.kind == crossCount {
		nu, nv := t.nodes[p.u].rows, t.nodes[p.v].rows
		du, dv := t.nodes[p.u].cols, t.nodes[p.v].cols
		ku, ownU := t.composedKey(p.pathU)
		kv, ownV := t.composedKey(p.pathV)
		counts := pool.GetF64Zeroed(nu * nv)
		pairCountAccum(counts, cnts[p.lca], ku, kv, nv, 0, t.nodes[p.lca].rows)
		block := pool.GetF64Zeroed(du * dv)
		blockOuterAccum(block, counts, t.nodes[p.u].x, t.nodes[p.v].x, 0, nu)
		addBlockAt(out, offU, offV, block, du, dv)
		pool.PutF64(block)
		pool.PutF64(counts)
		if ownU {
			pool.PutInt(ku)
		}
		if ownV {
			pool.PutInt(kv)
		}
		return
	}

	// Push path: src's cnt-weighted feature rows descend pathV edge by edge
	// (the first hop fuses the weight and, for siblings, the key gather),
	// closed by one product at the deepest relation.
	start := p.lca
	d := t.nodes[p.src].cols
	var key []int
	owned := false
	if p.kind == crossPush {
		key, owned = t.composedKey(p.pathU)
	}
	cur := pool.GetF64(p.maxPathRows * d)
	nxt := pool.GetF64(p.maxPathRows * d)
	c0 := p.pathV[0]
	zeroF64(cur[:t.nodes[c0].rows*d])
	scatterGatherRowsAccum(cur, t.nodes[p.src].x, cnts[start], key, t.nodes[c0].fk, 0, t.nodes[start].rows)
	prev := c0
	for _, c := range p.pathV[1:] {
		zeroF64(nxt[:t.nodes[c].rows*d])
		scatterRowsAccum(nxt, cur, t.nodes[c].fk, d, 0, t.nodes[prev].rows)
		cur, nxt = nxt, cur
		prev = c
	}
	dd := t.nodes[prev].cols
	block := pool.GetF64Zeroed(d * dd)
	crossMulAccum(block, cur, t.nodes[prev].x, d, 0, t.nodes[prev].rows)
	if p.kind == crossAncestor && p.src == p.v {
		// The push carried v's (the ancestor's) features down to u, so the
		// computed block is (d_v × d_u); add its transpose at (u, v).
		addBlockTransposedAt(out, offU, offV, block, d, dd)
	} else {
		addBlockAt(out, offU, offV, block, d, dd)
	}
	pool.PutF64(block)
	pool.PutF64(cur)
	pool.PutF64(nxt)
	if owned {
		pool.PutInt(key)
	}
}

// composedKey resolves a tree path to a key array at the path root's
// granularity: key[i] is the path-end row joined by row i. Single-edge paths
// borrow the edge fk directly (owned=false); longer paths compose into int
// scratch the caller must release with pool.PutInt.
//
//dmml:owns-scratch
func (t *JoinTree) composedKey(path []int) (key []int, owned bool) {
	fk0 := t.nodes[path[0]].fk
	if len(path) == 1 {
		return fk0, false
	}
	k := pool.GetInt(len(fk0))
	copy(k, fk0)
	for _, c := range path[1:] {
		mapKeysAccum(k, t.nodes[c].fk, 0, len(k))
	}
	return k, true
}

// gatherAdd adds src[fk[i]] into dst[i] for every parent row — the MatVec
// edge reduction. Chunks write disjoint dst ranges, so the parallel path
// needs no partials.
func gatherAdd(dst, src []float64, fk []int) {
	n := len(fk)
	if n < pushCutoff || pool.SerialNow() {
		gatherAddAccum(dst, src, fk, 0, n)
		return
	}
	pool.Do(n, pool.Grain(n, 2), func(_, lo, hi int) {
		gatherAddAccum(dst, src, fk, lo, hi)
	})
}

// scatterAdd adds src[i] into dst[fk[i]] — the VecMat group-sum. Parallel
// chunks collide on dst rows, so each worker accumulates into a scratch
// partial merged at the end; the serial regime allocates nothing.
func scatterAdd(dst, src []float64, fk []int) {
	n := len(fk)
	if n < pushCutoff || n < 4*len(dst) || pool.SerialNow() {
		scatterAddAccum(dst, src, fk, 0, n)
		return
	}
	partials := make([][]float64, pool.Workers())
	partials[0] = dst
	pool.Do(n, pool.Grain(n, 2), func(slot, lo, hi int) {
		acc := partials[slot]
		if acc == nil {
			acc = pool.GetF64Zeroed(len(dst))
			partials[slot] = acc
		}
		scatterAddAccum(acc, src, fk, lo, hi)
	})
	for _, p := range partials[1:] {
		if p != nil {
			la.Axpy(1, p, dst)
			pool.PutF64(p)
		}
	}
}

// gramWeighted accumulates the upper triangle of XᵀDX (D = diag(wts), nil =
// identity) into the row-major cols×cols buffer acc, parallelizing over rows
// with scratch partials when the syrk is heavy enough.
func gramWeighted(x *la.Dense, wts []float64, acc []float64) {
	n, d := x.Dims()
	if n*d*d < gramParCutoff || n < 2 || pool.SerialNow() {
		gramWeightedAccum(x, wts, acc, 0, n)
		return
	}
	partials := make([][]float64, pool.Workers())
	partials[0] = acc
	pool.Do(n, pool.Grain(n, d*d), func(slot, lo, hi int) {
		p := partials[slot]
		if p == nil {
			p = pool.GetF64Zeroed(d * d)
			partials[slot] = p
		}
		gramWeightedAccum(x, wts, p, lo, hi)
	})
	for _, p := range partials[1:] {
		if p != nil {
			la.Axpy(1, p, acc)
			pool.PutF64(p)
		}
	}
}

// zeroF64 clears a buffer.
//
//dmml:noalloc
func zeroF64(b []float64) {
	for i := range b {
		b[i] = 0
	}
}

// gatherAddAccum adds src[fk[i]] into dst[i] over [lo,hi).
//
//dmml:noalloc
func gatherAddAccum(dst, src []float64, fk []int, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] += src[fk[i]]
	}
}

// scatterAddAccum adds src[i] into dst[fk[i]] over [lo,hi).
//
//dmml:noalloc
func scatterAddAccum(dst, src []float64, fk []int, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[fk[i]] += src[i]
	}
}

// countScatterAccum pushes join multiplicities through one edge: dst[fk[i]]
// gains src[i], or 1 when src is nil (the root's implicit counts).
//
//dmml:noalloc
func countScatterAccum(dst, src []float64, fk []int, lo, hi int) {
	if src == nil {
		for i := lo; i < hi; i++ {
			dst[fk[i]]++
		}
		return
	}
	for i := lo; i < hi; i++ {
		dst[fk[i]] += src[i]
	}
}

// mapKeysAccum composes one fk hop into an existing key array:
// key[i] = fk[key[i]].
//
//dmml:noalloc
func mapKeysAccum(key, fk []int, lo, hi int) {
	for i := lo; i < hi; i++ {
		key[i] = fk[key[i]]
	}
}

// pairCountAccum accumulates pair co-occurrence weights into the dense
// nu×nv counting array: counts[ku[i]·nv + kv[i]] gains cnt[i] (1 when cnt is
// nil).
//
//dmml:noalloc
func pairCountAccum(counts, cnt []float64, ku, kv []int, nv, lo, hi int) {
	if cnt == nil {
		for i := lo; i < hi; i++ {
			counts[ku[i]*nv+kv[i]]++
		}
		return
	}
	for i := lo; i < hi; i++ {
		counts[ku[i]*nv+kv[i]] += cnt[i]
	}
}

// blockOuterAccum folds the counted outer products into the du×dv block:
// block += Σ counts[ru,rv] · xu[ru] ⊗ xv[rv].
//
//dmml:noalloc
func blockOuterAccum(block, counts []float64, xu, xv *la.Dense, r0, r1 int) {
	nv, dv := xv.Dims()
	for ru := r0; ru < r1; ru++ {
		crow := counts[ru*nv : (ru+1)*nv]
		urow := xu.RowView(ru)
		for rv, c := range crow {
			if c == 0 {
				continue
			}
			vrow := xv.RowView(rv)
			for i, uv := range urow {
				if uv == 0 {
					continue
				}
				la.Axpy(c*uv, vrow, block[i*dv:(i+1)*dv])
			}
		}
	}
}

// scatterGatherRowsAccum is the fused first hop of a feature push:
// dst[fk[r]] += cnt[r] · x[key[r]] row-wise, with nil cnt meaning weight 1
// and nil key meaning x's own row r (the ancestor case).
//
//dmml:noalloc
func scatterGatherRowsAccum(dst []float64, x *la.Dense, cnt []float64, key, fk []int, lo, hi int) {
	d := x.Cols()
	for r := lo; r < hi; r++ {
		c := 1.0
		if cnt != nil {
			c = cnt[r]
		}
		if c == 0 {
			continue
		}
		sr := r
		if key != nil {
			sr = key[r]
		}
		la.Axpy(c, x.RowView(sr), dst[fk[r]*d:fk[r]*d+d])
	}
}

// scatterRowsAccum pushes a d-wide row table through one edge:
// dst[fk[r]] += src[r] row-wise.
//
//dmml:noalloc
func scatterRowsAccum(dst, src []float64, fk []int, d, lo, hi int) {
	for r := lo; r < hi; r++ {
		la.Axpy(1, src[r*d:(r+1)*d], dst[fk[r]*d:fk[r]*d+d])
	}
}

// crossMulAccum closes a push: block += aᵀ · x where a is the pushed
// rows×da table at x's granularity.
//
//dmml:noalloc
func crossMulAccum(block, a []float64, x *la.Dense, da, r0, r1 int) {
	dv := x.Cols()
	for r := r0; r < r1; r++ {
		arow := a[r*da : (r+1)*da]
		xrow := x.RowView(r)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			brow := block[i*dv : (i+1)*dv]
			for j, xj := range xrow {
				brow[j] += av * xj
			}
		}
	}
}

// gramWeightedAccum adds the upper triangle of X[r0:r1]ᵀ D X[r0:r1] into the
// row-major d×d buffer acc (D = diag(wts); nil wts = identity).
//
//dmml:noalloc
func gramWeightedAccum(x *la.Dense, wts []float64, acc []float64, r0, r1 int) {
	d := x.Cols()
	for i := r0; i < r1; i++ {
		wi := 1.0
		if wts != nil {
			wi = wts[i]
		}
		if wi == 0 {
			continue
		}
		row := x.RowView(i)
		for a := 0; a < d; a++ {
			va := wi * row[a]
			if va == 0 {
				continue
			}
			arow := acc[a*d : (a+1)*d]
			for b := a; b < d; b++ {
				arow[b] += va * row[b]
			}
		}
	}
}

// addBlockAt adds the row-major br×bc buffer blk into out at (r0, c0).
//
//dmml:noalloc
func addBlockAt(out *la.Dense, r0, c0 int, blk []float64, br, bc int) {
	for i := 0; i < br; i++ {
		orow := out.RowView(r0 + i)
		brow := blk[i*bc : (i+1)*bc]
		for j, v := range brow {
			orow[c0+j] += v
		}
	}
}

// addBlockTransposedAt adds blkᵀ (bc×br, for a row-major br×bc blk) into out
// at (r0, c0).
//
//dmml:noalloc
func addBlockTransposedAt(out *la.Dense, r0, c0 int, blk []float64, br, bc int) {
	for i := 0; i < bc; i++ {
		orow := out.RowView(r0 + i)
		for j := 0; j < br; j++ {
			orow[c0+j] += blk[j*bc+i]
		}
	}
}
