package factorized

import "dmml/internal/metrics"

// Engine observability instruments (see internal/metrics); no-ops costing
// one atomic load until metrics.Enable(), so the kernels' AllocsPerRun pins
// hold with them in place.
//
// The pushdown/materialized flop pair is the headline: every kernel call
// adds both the flops the pushdown actually spends and what the same call
// would have cost over the joined matrix, so `dmmlbench -metrics` shows the
// realized factorization win of a whole run as one ratio.
var (
	mMatVecCalls = metrics.NewCounter("factorized.matvec.calls")
	mVecMatCalls = metrics.NewCounter("factorized.vecmat.calls")
	mGramCalls   = metrics.NewCounter("factorized.gram.calls")

	mMatVecTimer = metrics.NewTimer("factorized.MatVec")
	mVecMatTimer = metrics.NewTimer("factorized.VecMat")
	mGramTimer   = metrics.NewTimer("factorized.Gram")

	mFlopsPushdown     = metrics.NewCounter("factorized.flops.pushdown")
	mFlopsMaterialized = metrics.NewCounter("factorized.flops.materialized")
)
