package paramserver

import "dmml/internal/metrics"

// Observability instruments (no-ops until metrics.Enable). The server
// already keeps per-instance atomic counters for its Stats() API; these
// fold the same events into the process-wide metrics registry so push/pull
// latency distributions and fault-path counts land in the one `dmmlbench
// -metrics` dump alongside the kernel and storage instruments. Latency
// timers wrap the whole logical operation — retries, backoff sleeps, and
// injected jitter included — because that is the latency a worker actually
// experiences.
var (
	mPullTimer  = metrics.NewTimer("ps.Pull")
	mPushTimer  = metrics.NewTimer("ps.Push")
	mRPCs       = metrics.NewCounter("ps.rpcs")
	mRetries    = metrics.NewCounter("ps.retries")
	mTimeouts   = metrics.NewCounter("ps.timeouts")
	mRecoveries = metrics.NewCounter("ps.recoveries")
)
