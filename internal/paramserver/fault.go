package paramserver

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ErrRPCFailed marks an emulated shard RPC that exhausted its retry budget.
var ErrRPCFailed = errors.New("paramserver: rpc failed")

// ErrOpDeadline marks a shard operation that exceeded RetryPolicy.Deadline
// across retries.
var ErrOpDeadline = errors.New("paramserver: op deadline exceeded")

// errKilled is the injected worker crash; Train's supervisor catches it and
// restarts the worker from the shared clock (up to MaxWorkerRestarts).
var errKilled = errors.New("paramserver: worker killed")

// errAborted signals first-error cancellation: another worker failed and the
// run is shutting down; the worker exits without recording an error.
var errAborted = errors.New("paramserver: run aborted")

// FaultConfig is the injectable fault model for the shard RPC path. The zero
// value injects nothing; all draws come from a private RNG seeded with Seed,
// so a faulty run is reproducible.
type FaultConfig struct {
	// FailProb is the per-RPC probability that the call fails before the
	// shard applies anything (a lost request).
	FailProb float64
	// AckLossProb is the per-RPC probability that the shard applies the
	// operation but the acknowledgement is lost, so the client sees a
	// failure and retries. Replaying a sequence-tagged push after ack loss
	// must not double-apply — the shard-side dedup table guarantees that.
	AckLossProb float64
	// Jitter adds uniform extra latency in [0, Jitter) to every RPC.
	Jitter time.Duration
	// KillAtTick maps a worker id to the local tick at which the worker
	// crashes (once per run): its goroutine dies mid-epoch, losing all local
	// state. Without recovery this deadlocks the SSP barrier.
	KillAtTick map[int]int
	// Seed seeds the injector's RNG.
	Seed int64
}

// faultInjector draws fault decisions for the server; it is shared by all
// workers, so its RNG is mutex-protected.
type faultInjector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	cfg   FaultConfig
	fired map[int]bool // worker kills that already happened
}

func newFaultInjector(cfg FaultConfig) *faultInjector {
	// Copy the kill map so later caller mutation cannot race the workers.
	kills := make(map[int]int, len(cfg.KillAtTick))
	for w, t := range cfg.KillAtTick {
		kills[w] = t
	}
	cfg.KillAtTick = kills
	return &faultInjector{
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		cfg:   cfg,
		fired: make(map[int]bool),
	}
}

// rpcFault decides the fate of one shard RPC: lost request, lost ack, and
// how much extra latency to inject.
func (f *faultInjector) rpcFault() (fail, ackLoss bool, jitter time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cfg.Jitter > 0 {
		jitter = time.Duration(f.rng.Int63n(int64(f.cfg.Jitter)))
	}
	r := f.rng.Float64()
	switch {
	case f.cfg.FailProb > 0 && r < f.cfg.FailProb:
		fail = true
	case f.cfg.AckLossProb > 0 && r < f.cfg.FailProb+f.cfg.AckLossProb:
		ackLoss = true
	}
	return fail, ackLoss, jitter
}

// shouldKill reports whether worker must crash at local tick (fires at most
// once per worker per run, so a restarted worker is not re-killed).
func (f *faultInjector) shouldKill(worker, tick int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	at, ok := f.cfg.KillAtTick[worker]
	if !ok || f.fired[worker] || tick < at {
		return false
	}
	f.fired[worker] = true
	return true
}

// RetryPolicy bounds the client-side retry loop around every shard RPC:
// up to MaxRetries retries after the first attempt, sleeping an
// exponentially growing backoff (BaseBackoff doubling up to MaxBackoff)
// between attempts, all under a per-operation Deadline. The zero value
// disables retries entirely; NewServer installs DefaultRetryPolicy.
type RetryPolicy struct {
	MaxRetries  int
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	Deadline    time.Duration // 0 = no deadline
}

// DefaultRetryPolicy survives transient fault injection (FailProb ≲ 0.3)
// with negligible added latency on the fault-free path.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxRetries:  8,
		BaseBackoff: 50 * time.Microsecond,
		MaxBackoff:  5 * time.Millisecond,
		Deadline:    2 * time.Second,
	}
}
