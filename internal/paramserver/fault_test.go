package paramserver

import (
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"dmml/internal/opt"
	"dmml/internal/workload"
)

// Satellite regression: a push must fire one emulated RPC per shard that
// receives a non-zero slice — a sparse gradient touching one shard costs one
// RPC, and an all-zero gradient costs none.
func TestSparsePushSkipsZeroShards(t *testing.T) {
	ps, err := NewServer(8, 4, 0) // 4 shards of 2 dims each
	if err != nil {
		t.Fatal(err)
	}
	sparse := make([]float64, 8)
	sparse[1] = 3 // only shard 0 (dims 0–1) is non-zero
	if err := ps.Push(sparse, 1); err != nil {
		t.Fatal(err)
	}
	if st := ps.Stats(); st.ShardRPCs != 1 {
		t.Fatalf("sparse push fired %d shard RPCs, want exactly 1", st.ShardRPCs)
	}
	if err := ps.Push(make([]float64, 8), 1); err != nil {
		t.Fatal(err)
	}
	st := ps.Stats()
	if st.ShardRPCs != 1 {
		t.Fatalf("all-zero push fired %d extra RPCs, want 0", st.ShardRPCs-1)
	}
	if st.Pushes != 2 {
		t.Fatalf("pushes = %d, want 2 (zero pushes still count as ops)", st.Pushes)
	}
	w, err := ps.Pull()
	if err != nil {
		t.Fatal(err)
	}
	if w[1] != 3 {
		t.Fatalf("w[1] = %v, want 3", w[1])
	}
	if st := ps.Stats(); st.ShardRPCs != 5 {
		t.Fatalf("pull must still visit all 4 shards: rpcs = %d, want 5", st.ShardRPCs)
	}
}

// Transient request loss must be absorbed by retry/backoff: the op succeeds,
// retries are counted, and the result is exactly one application.
func TestRetryRecoversFromTransientFailures(t *testing.T) {
	ps, _ := NewServer(6, 3, 0)
	ps.SetFaults(&FaultConfig{FailProb: 0.4, Seed: 7})
	ps.SetRetryPolicy(RetryPolicy{MaxRetries: 20, BaseBackoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond})
	one := []float64{1, 1, 1, 1, 1, 1}
	for i := 0; i < 50; i++ {
		if err := ps.Push(one, 1); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	ps.SetFaults(nil)
	w, err := ps.Pull()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range w {
		if v != 50 {
			t.Fatalf("w[%d] = %v, want 50 (lost or duplicated update under retry)", i, v)
		}
	}
	if st := ps.Stats(); st.Retries == 0 {
		t.Fatal("expected retries under FailProb=0.4")
	}
}

// Ack loss is the uncertain-push case: the shard applied the update but the
// client saw a failure. The replay must be idempotent — sequence-tagged
// pushes are deduplicated shard-side, untagged pushes client-side.
func TestIdempotentReplayUnderAckLoss(t *testing.T) {
	for name, push := range map[string]func(ps *Server, delta []float64) error{
		"tagged": func(ps *Server, delta []float64) error {
			return ps.pushFrom(0, 1, delta, 1)
		},
		"untagged": func(ps *Server, delta []float64) error {
			return ps.Push(delta, 1)
		},
	} {
		ps, _ := NewServer(4, 2, 0)
		ps.SetFaults(&FaultConfig{AckLossProb: 0.7, Seed: 11})
		ps.SetRetryPolicy(RetryPolicy{MaxRetries: 64, BaseBackoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond})
		if err := push(ps, []float64{1, 2, 3, 4}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ps.SetFaults(nil)
		w, err := ps.Pull()
		if err != nil {
			t.Fatal(err)
		}
		want := []float64{1, 2, 3, 4}
		for i := range w {
			if w[i] != want[i] {
				t.Fatalf("%s: w = %v, want exactly one application %v (ack-lost replay double-applied)", name, w, want)
			}
		}
		if st := ps.Stats(); st.Retries == 0 {
			t.Fatalf("%s: expected ack-loss retries", name)
		}
	}
}

// A permanently failing shard must hit the per-op deadline, count a timeout,
// and surface ErrOpDeadline.
func TestOpDeadlineExceeded(t *testing.T) {
	ps, _ := NewServer(4, 2, 0)
	ps.SetFaults(&FaultConfig{FailProb: 1, Seed: 3})
	ps.SetRetryPolicy(RetryPolicy{
		MaxRetries: 1 << 20, BaseBackoff: 200 * time.Microsecond,
		MaxBackoff: time.Millisecond, Deadline: 5 * time.Millisecond,
	})
	_, err := ps.Pull()
	if !errors.Is(err, ErrOpDeadline) {
		t.Fatalf("err = %v, want ErrOpDeadline", err)
	}
	if st := ps.Stats(); st.Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", st.Timeouts)
	}
}

// Exhausted retries (without a deadline) must surface ErrRPCFailed.
func TestRetriesExhausted(t *testing.T) {
	ps, _ := NewServer(4, 2, 0)
	ps.SetFaults(&FaultConfig{FailProb: 1, Seed: 3})
	ps.SetRetryPolicy(RetryPolicy{MaxRetries: 3, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond})
	err := ps.Push([]float64{1, 1, 1, 1}, 1)
	if !errors.Is(err, ErrRPCFailed) {
		t.Fatalf("err = %v, want ErrRPCFailed", err)
	}
	if st := ps.Stats(); st.Retries != 3 {
		t.Fatalf("retries = %d, want 3", st.Retries)
	}
}

func faultTrainSetup(t *testing.T, seed int64, n int) (opt.DenseRows, []float64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	x, y, _ := workload.Classification(r, n, 8, 0.02)
	return opt.DenseRows{M: x}, y
}

// Satellite regression: an unrecoverable first-tick failure must cancel the
// whole run promptly instead of letting healthy workers train full epochs
// against a doomed model. Per-RPC latency makes the full-run baseline wall
// time large and deterministic, so the ratio is a sharp discriminator.
func TestFirstErrorCancellationAbortsPromptly(t *testing.T) {
	data, y := faultTrainSetup(t, 201, 2000)
	base := TrainConfig{
		Workers: 4, Epochs: 8, BatchSize: 16, Step: 0.5, Decay: 0.5,
		Mode: BSP, Seed: 5,
	}
	run := func(cfg TrainConfig) (time.Duration, error) {
		ps, _ := NewServer(8, 4, 50*time.Microsecond)
		start := time.Now()
		_, err := Train(ps, data, y, opt.Logistic{}, cfg)
		return time.Since(start), err
	}
	baseline, err := run(base)
	if err != nil {
		t.Fatal(err)
	}
	killed := base
	killed.Faults = &FaultConfig{KillAtTick: map[int]int{2: 0}, Seed: 5}
	// MaxWorkerRestarts = 0: the tick-0 kill is fatal and must cancel the run.
	cancelled, err := run(killed)
	if err == nil || !errors.Is(err, errKilled) {
		t.Fatalf("err = %v, want the worker-killed error", err)
	}
	if cancelled > baseline/4 {
		t.Fatalf("cancelled run took %v vs %v baseline; first-error cancellation did not propagate", cancelled, baseline)
	}
}

// A killed worker must be restarted from the shared clock: the run completes
// (no SSP deadlock), records the recovery, and still converges.
func TestKillAndRecoverInRun(t *testing.T) {
	data, y := faultTrainSetup(t, 202, 3000)
	for _, mode := range []Mode{BSP, SSP, Async} {
		ps, _ := NewServer(8, 4, 0)
		res, err := Train(ps, data, y, opt.Logistic{}, TrainConfig{
			Workers: 4, Epochs: 6, BatchSize: 32, Step: 0.5, Decay: 0.5,
			Mode: mode, Staleness: 2, Seed: 6,
			Faults:            &FaultConfig{KillAtTick: map[int]int{1: 4}, Seed: 21},
			MaxWorkerRestarts: 2,
			Checkpoint:        CheckpointConfig{Path: filepath.Join(t.TempDir(), "model.ck"), Every: 16},
		})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if res.Recoveries != 1 {
			t.Fatalf("mode %v: recoveries = %d, want 1", mode, res.Recoveries)
		}
		if res.FinalLoss > 0.25 {
			t.Fatalf("mode %v: final loss %v after recovery", mode, res.FinalLoss)
		}
	}
}

// Acceptance criterion: with per-op failure probability 0.05 and one
// kill-at-tick crash injected, every mode completes via retry + restart and
// lands within 5% of the fault-free final loss; fault counters are reported.
func TestFaultyTrainingWithin5PctOfFaultFree(t *testing.T) {
	data, y := faultTrainSetup(t, 203, 3000)
	for _, mode := range []Mode{BSP, SSP, Async} {
		run := func(faults *FaultConfig, restarts int, ckPath string) *Result {
			t.Helper()
			ps, _ := NewServer(8, 4, 0)
			cfg := TrainConfig{
				Workers: 4, Epochs: 8, BatchSize: 32, Step: 0.5, Decay: 0.5,
				Mode: mode, Staleness: 2, Seed: 7,
				Faults: faults, MaxWorkerRestarts: restarts,
			}
			if ckPath != "" {
				cfg.Checkpoint = CheckpointConfig{Path: ckPath, Every: 32}
			}
			res, err := Train(ps, data, y, opt.Logistic{}, cfg)
			if err != nil {
				t.Fatalf("mode %v: %v", mode, err)
			}
			return res
		}
		baseline := run(nil, 0, "")
		faulty := run(&FaultConfig{
			FailProb:   0.05,
			Jitter:     5 * time.Microsecond,
			KillAtTick: map[int]int{2: 9},
			Seed:       31,
		}, 2, filepath.Join(t.TempDir(), "model.ck"))
		if faulty.Retries == 0 {
			t.Fatalf("mode %v: no retries recorded under FailProb=0.05", mode)
		}
		if faulty.Recoveries < 1 {
			t.Fatalf("mode %v: no recovery recorded for the injected kill", mode)
		}
		if delta := math.Abs(faulty.FinalLoss - baseline.FinalLoss); delta > 0.05*baseline.FinalLoss {
			t.Fatalf("mode %v: faulty loss %v vs fault-free %v (delta %v > 5%%)",
				mode, faulty.FinalLoss, baseline.FinalLoss, delta)
		}
	}
}

// SSP invariant property: the observed clock skew when a worker enters a
// tick never exceeds the staleness bound — with and without fault injection
// (including a kill + clock re-entry, which must not let anyone run ahead).
func TestSSPSkewInvariant(t *testing.T) {
	data, y := faultTrainSetup(t, 204, 1500)
	faultSets := []*FaultConfig{
		nil,
		{FailProb: 0.1, Jitter: 10 * time.Microsecond, Seed: 41},
		{FailProb: 0.05, KillAtTick: map[int]int{1: 3}, Seed: 42},
	}
	for _, staleness := range []int{0, 1, 3} {
		for fi, faults := range faultSets {
			ps, _ := NewServer(8, 2, 0)
			res, err := Train(ps, data, y, opt.Logistic{}, TrainConfig{
				Workers: 4, Epochs: 3, BatchSize: 16, Step: 0.5, Decay: 0.5,
				Mode: SSP, Staleness: staleness, Seed: int64(8 + fi),
				Faults: faults, MaxWorkerRestarts: 3,
			})
			if err != nil {
				t.Fatalf("staleness %d faults %d: %v", staleness, fi, err)
			}
			if res.MaxClockSkew > staleness {
				t.Fatalf("staleness %d faults %d: observed skew %d exceeds the bound",
					staleness, fi, res.MaxClockSkew)
			}
		}
	}
}

// Checkpoint/restore round trip: a run that dies (kill with no restarts
// allowed) leaves a usable checkpoint behind; a fresh server restored from
// it resumes at the recorded clock and converges.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	data, y := faultTrainSetup(t, 205, 3000)
	ckPath := filepath.Join(t.TempDir(), "model.ck")
	cfg := TrainConfig{
		Workers: 4, Epochs: 6, BatchSize: 32, Step: 0.5, Decay: 0.5,
		Mode: SSP, Staleness: 2, Seed: 9,
		Checkpoint: CheckpointConfig{Path: ckPath, Every: 16},
	}
	// Run 1: crash worker 3 mid-run with restarts disabled — the run aborts,
	// but the periodic checkpoint survives.
	ps1, _ := NewServer(8, 4, 0)
	crash := cfg
	crash.Faults = &FaultConfig{KillAtTick: map[int]int{3: 20}, Seed: 51}
	if _, err := Train(ps1, data, y, opt.Logistic{}, crash); !errors.Is(err, errKilled) {
		t.Fatalf("err = %v, want the worker-killed error", err)
	}
	clock, w, err := LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatalf("no usable checkpoint after crash: %v", err)
	}
	if clock < 16 || len(w) != 8 {
		t.Fatalf("checkpoint clock=%d dim=%d, want clock ≥ 16, dim 8", clock, len(w))
	}
	// Run 2: restore into a fresh server and finish training.
	ps2, _ := NewServer(8, 4, 0)
	restored, err := ps2.RestoreFromCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if restored != clock {
		t.Fatalf("restored clock %d != checkpoint clock %d", restored, clock)
	}
	got, err := ps2.Pull()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != w[i] {
			t.Fatalf("restored weights differ at %d: %v != %v", i, got[i], w[i])
		}
	}
	res, err := Train(ps2, data, y, opt.Logistic{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss > 0.25 {
		t.Fatalf("restored run did not converge: loss %v", res.FinalLoss)
	}
}

// A killed worker with recovery disabled must not deadlock the BSP barrier:
// cancellation wakes the peers blocked in waitTurn.
func TestKillWithoutRecoveryDoesNotDeadlock(t *testing.T) {
	data, y := faultTrainSetup(t, 206, 1000)
	done := make(chan error, 1)
	go func() {
		ps, _ := NewServer(8, 2, 0)
		_, err := Train(ps, data, y, opt.Logistic{}, TrainConfig{
			Workers: 4, Epochs: 4, BatchSize: 16, Step: 0.5, Mode: BSP, Seed: 10,
			Faults: &FaultConfig{KillAtTick: map[int]int{0: 2}, Seed: 61},
		})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, errKilled) {
			t.Fatalf("err = %v, want the worker-killed error", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run deadlocked on the SSP barrier after an unrecovered kill")
	}
}
