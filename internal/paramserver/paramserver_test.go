package paramserver

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dmml/internal/la"
	"dmml/internal/opt"
	"dmml/internal/workload"
)

func TestServerValidation(t *testing.T) {
	if _, err := NewServer(0, 1, 0); err == nil {
		t.Fatal("want dim error")
	}
	if _, err := NewServer(4, 8, 0); err == nil {
		t.Fatal("want shards > dim error")
	}
	ps, err := NewServer(10, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ps.NumShards() != 3 {
		t.Fatalf("shards = %d", ps.NumShards())
	}
	if err := ps.Push(make([]float64, 4), 1); err == nil {
		t.Fatal("want push length error")
	}
}

func TestPullPushRoundTrip(t *testing.T) {
	ps, _ := NewServer(7, 3, 0)
	delta := []float64{1, 2, 3, 4, 5, 6, 7}
	if err := ps.Push(delta, 2); err != nil {
		t.Fatal(err)
	}
	w, err := ps.Pull()
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if w[i] != 2*delta[i] {
			t.Fatalf("w[%d] = %v", i, w[i])
		}
	}
	st := ps.Stats()
	if st.Pulls != 1 || st.Pushes != 1 {
		t.Fatalf("stats = %d pulls %d pushes", st.Pulls, st.Pushes)
	}
	if st.Retries != 0 || st.Timeouts != 0 || st.Recoveries != 0 {
		t.Fatalf("fault counters must be zero without injection: %+v", st)
	}
}

func TestConcurrentPushesAllLand(t *testing.T) {
	ps, _ := NewServer(5, 2, 0)
	const workers = 8
	const pushesPer = 100
	var wg sync.WaitGroup
	one := []float64{1, 1, 1, 1, 1}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := 0; p < pushesPer; p++ {
				_ = ps.Push(one, 1)
			}
		}()
	}
	wg.Wait()
	w, err := ps.Pull()
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if w[i] != workers*pushesPer {
			t.Fatalf("w[%d] = %v, want %d (lost updates)", i, w[i], workers*pushesPer)
		}
	}
}

func TestSSPClockOrdering(t *testing.T) {
	c := newSSPClock(2)
	// Worker 0 advances twice with staleness 1 while worker 1 is at 0: the
	// third tick must block until worker 1 advances.
	c.advance(0)
	done := make(chan struct{})
	go func() {
		c.waitTurn(0, 1) // clock[0]=1, min=0, 1-0 ≤ 1 → proceeds
		c.advance(0)     // clock[0]=2
		c.waitTurn(0, 1) // 2-0 > 1 → blocks until worker 1 advances
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("worker 0 ran ahead beyond the staleness bound")
	case <-time.After(50 * time.Millisecond):
	}
	c.advance(1)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("worker 0 did not resume after the straggler advanced")
	}
}

func trainSetup(t *testing.T, seed int64) (*la.Dense, []float64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	x, y, _ := workload.Classification(r, 3000, 8, 0.02)
	return x, y
}

func TestTrainAllModesConverge(t *testing.T) {
	x, y := trainSetup(t, 160)
	for _, mode := range []Mode{BSP, SSP, Async} {
		ps, err := NewServer(8, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Train(ps, opt.DenseRows{M: x}, y, opt.Logistic{}, TrainConfig{
			Workers: 4, Epochs: 6, BatchSize: 32, Step: 0.5, Decay: 0.5,
			Mode: mode, Staleness: 2, Seed: 1,
		})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if res.FinalLoss > 0.25 {
			t.Fatalf("mode %v: final loss %v", mode, res.FinalLoss)
		}
		if res.Pushes == 0 || res.Pulls == 0 {
			t.Fatalf("mode %v: no traffic recorded", mode)
		}
	}
}

func TestTrainSingleWorkerMatchesLocalSGDShape(t *testing.T) {
	x, y := trainSetup(t, 161)
	ps, _ := NewServer(8, 1, 0)
	res, err := Train(ps, opt.DenseRows{M: x}, y, opt.Logistic{}, TrainConfig{
		Workers: 1, Epochs: 12, BatchSize: 1, Step: 0.5, Decay: 0.5, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Single worker, batch 1, no latency: equivalent to sequential SGD up to
	// shuffling; it must converge comparably.
	if res.FinalLoss > 0.25 {
		t.Fatalf("final loss = %v", res.FinalLoss)
	}
}

func TestTrainValidation(t *testing.T) {
	x := la.NewDense(10, 3)
	y := make([]float64, 10)
	ps, _ := NewServer(3, 1, 0)
	bad := []TrainConfig{
		{Workers: 0, Epochs: 1, BatchSize: 1, Step: 1},
		{Workers: 1, Epochs: 0, BatchSize: 1, Step: 1},
		{Workers: 1, Epochs: 1, BatchSize: 0, Step: 1},
		{Workers: 1, Epochs: 1, BatchSize: 1, Step: 0},
		{Workers: 1, Epochs: 1, BatchSize: 1, Step: 1, Mode: SSP, Staleness: -1},
	}
	for i, cfg := range bad {
		if _, err := Train(ps, opt.DenseRows{M: x}, y, opt.Squared{}, cfg); err == nil {
			t.Fatalf("case %d: want validation error", i)
		}
	}
	// Dim mismatch.
	ps2, _ := NewServer(5, 1, 0)
	if _, err := Train(ps2, opt.DenseRows{M: x}, y, opt.Squared{}, TrainConfig{
		Workers: 1, Epochs: 1, BatchSize: 1, Step: 1,
	}); err == nil {
		t.Fatal("want dim mismatch error")
	}
	// Label mismatch.
	if _, err := Train(ps, opt.DenseRows{M: x}, y[:4], opt.Squared{}, TrainConfig{
		Workers: 1, Epochs: 1, BatchSize: 1, Step: 1,
	}); err == nil {
		t.Fatal("want label mismatch error")
	}
}

// With injected per-RPC latency, async must finish faster than BSP for the
// same workload — the published parameter-server throughput shape.
func TestAsyncBeatsBSPUnderLatency(t *testing.T) {
	r := rand.New(rand.NewSource(162))
	x, y, _ := workload.Classification(r, 400, 6, 0.02)
	run := func(mode Mode) time.Duration {
		ps, _ := NewServer(6, 2, 200*time.Microsecond)
		start := time.Now()
		_, err := Train(ps, opt.DenseRows{M: x}, y, opt.Logistic{}, TrainConfig{
			Workers: 4, Epochs: 2, BatchSize: 16, Step: 0.5, Mode: mode, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	// Median of 3 to damp scheduler noise.
	med := func(mode Mode) time.Duration {
		ts := []time.Duration{run(mode), run(mode), run(mode)}
		if ts[0] > ts[1] {
			ts[0], ts[1] = ts[1], ts[0]
		}
		if ts[1] > ts[2] {
			ts[1], ts[2] = ts[2], ts[1]
		}
		if ts[0] > ts[1] {
			ts[0], ts[1] = ts[1], ts[0]
		}
		return ts[1]
	}
	bsp, async := med(BSP), med(Async)
	// Rough parity is the claim here (the idle-time test is the sharp
	// discriminator); allow generous slack for scheduler noise and
	// race-detector instrumentation.
	if float64(async) > 2*float64(bsp) {
		t.Fatalf("async %v much slower than BSP %v", async, bsp)
	}
}

func TestModeString(t *testing.T) {
	if BSP.String() != "bsp" || SSP.String() != "ssp" || Async.String() != "async" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode must still format")
	}
}

func TestSSPFinishUnblocksStragglers(t *testing.T) {
	// A finished worker must not hold back others (regression for deadlock).
	x, y := trainSetup(t, 163)
	ps, _ := NewServer(8, 2, 0)
	// Workers > rows/chunk edge: more workers than useful partitions.
	res, err := Train(ps, opt.DenseRows{M: x.Slice(0, 5, 0, 8)}, y[:5], opt.Logistic{}, TrainConfig{
		Workers: 8, Epochs: 2, BatchSize: 2, Step: 0.1, Mode: BSP, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.FinalLoss) {
		t.Fatal("NaN loss")
	}
}

// A straggling worker must force BSP's fast workers to idle at barriers,
// while async workers never block — the parameter-server motivation.
func TestStragglerIdlesBSPNotAsync(t *testing.T) {
	r := rand.New(rand.NewSource(164))
	x, y, _ := workload.Classification(r, 800, 6, 0.02)
	run := func(mode Mode) time.Duration {
		ps, _ := NewServer(6, 2, 0)
		res, err := Train(ps, opt.DenseRows{M: x}, y, opt.Logistic{}, TrainConfig{
			Workers: 4, Epochs: 2, BatchSize: 25, Step: 0.5, Mode: mode, Seed: 9,
			StragglerDelay: 2 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.WorkerIdle
	}
	bspIdle, asyncIdle := run(BSP), run(Async)
	// Worker 0 adds 2ms x 16 ticks; the three fast BSP workers must absorb
	// most of that as barrier idle time. Async never waits.
	if bspIdle < 30*time.Millisecond {
		t.Fatalf("BSP idle = %v, want ≫ 0 under a straggler", bspIdle)
	}
	if asyncIdle > bspIdle/10 {
		t.Fatalf("async idle = %v vs BSP %v; async should be near zero", asyncIdle, bspIdle)
	}
}
