// Package paramserver simulates a sharded parameter server in-process, the
// distributed-ML substrate the paper surveys: model weights are partitioned
// across shards, workers pull the current model and push gradients, and
// coordination follows the stale-synchronous-parallel (SSP) spectrum —
// staleness 0 is BSP (barrier per clock tick), unbounded staleness is fully
// asynchronous. Optional per-operation latency injection emulates network
// round trips so the BSP-vs-async throughput shape is observable on a single
// machine.
//
// The package is fault-tolerant: an injectable fault model (FaultConfig) can
// lose requests, lose acknowledgements, jitter latency, and kill workers at
// a deterministic tick. Every shard RPC runs under bounded exponential-
// backoff retry (RetryPolicy); sequence-tagged pushes make ack-loss replay
// idempotent; Train periodically checkpoints the model through
// internal/storage and restarts killed workers from the shared clock so a
// crash neither deadlocks the SSP barrier nor dooms the run.
package paramserver

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dmml/internal/la"
	"dmml/internal/opt"
)

// Server is a sharded parameter vector with pull/push access.
type Server struct {
	shards []*shard
	dim    int
	// opLatency is injected before every shard RPC to emulate the network.
	opLatency time.Duration
	// retry bounds the client-side retry loop; faults injects failures.
	// Both are installed before workers start and read-only afterwards.
	retry  RetryPolicy
	faults *faultInjector

	pulls      atomic.Int64
	pushes     atomic.Int64
	rpcs       atomic.Int64
	retries    atomic.Int64
	timeouts   atomic.Int64
	recoveries atomic.Int64
}

type shard struct {
	mu sync.Mutex
	lo int // global index of w[0]
	w  []float64
	// lastSeq tracks, per worker, the newest applied push sequence. A
	// sequence-tagged push whose seq is not newer is a duplicate replay of
	// an uncertain (ack-lost) RPC and is skipped — shard-side idempotency.
	lastSeq map[int]uint64
}

// NewServer creates a parameter server for a dim-dimensional model split
// across the given number of shards.
func NewServer(dim, shards int, opLatency time.Duration) (*Server, error) {
	if dim < 1 {
		return nil, fmt.Errorf("paramserver: dim must be ≥ 1, got %d", dim)
	}
	if shards < 1 || shards > dim {
		return nil, fmt.Errorf("paramserver: shards=%d out of range for dim=%d", shards, dim)
	}
	s := &Server{dim: dim, opLatency: opLatency, retry: DefaultRetryPolicy()}
	chunk := (dim + shards - 1) / shards
	for lo := 0; lo < dim; lo += chunk {
		hi := min(lo+chunk, dim)
		s.shards = append(s.shards, &shard{lo: lo, w: make([]float64, hi-lo), lastSeq: make(map[int]uint64)})
	}
	return s, nil
}

// NumShards returns the shard count.
func (s *Server) NumShards() int { return len(s.shards) }

// SetRetryPolicy replaces the retry policy. Not safe to call concurrently
// with pulls or pushes.
func (s *Server) SetRetryPolicy(p RetryPolicy) { s.retry = p }

// SetFaults installs the fault model (nil disables injection). Not safe to
// call concurrently with pulls or pushes.
func (s *Server) SetFaults(cfg *FaultConfig) {
	if cfg == nil {
		s.faults = nil
		return
	}
	s.faults = newFaultInjector(*cfg)
}

// Pull gathers the full model (one emulated RPC per shard).
func (s *Server) Pull() ([]float64, error) {
	sw := mPullTimer.Start()
	defer sw.Stop()
	out := make([]float64, s.dim)
	for _, sh := range s.shards {
		sh := sh
		err := s.callShard(func() {
			sh.mu.Lock()
			copy(out[sh.lo:sh.lo+len(sh.w)], sh.w)
			sh.mu.Unlock()
		})
		if err != nil {
			return nil, fmt.Errorf("paramserver: pull: %w", err)
		}
	}
	s.pulls.Add(1)
	return out, nil
}

// Push applies w += scale·delta across shards (one emulated RPC per shard
// that receives a non-zero slice; shards whose delta slice is all zero are
// skipped entirely). Retries after an ack-lost RPC are applied at most once
// per call; workers inside Train use the sequence-tagged pushFrom, whose
// replay dedup lives on the shard itself.
func (s *Server) Push(delta []float64, scale float64) error {
	return s.push(-1, 0, delta, scale)
}

// pushFrom is a sequence-tagged push: worker identifies the single-threaded
// client and seq must be strictly increasing per worker across the run
// (restarted workers bump an incarnation number in the high bits). Shards
// skip any (worker, seq) at or below their high-water mark, which makes the
// replay of an uncertain push idempotent even though the client cannot know
// whether the lost-ack attempt applied.
func (s *Server) pushFrom(worker int, seq uint64, delta []float64, scale float64) error {
	if worker < 0 {
		return fmt.Errorf("paramserver: pushFrom worker id %d must be ≥ 0", worker)
	}
	return s.push(worker, seq, delta, scale)
}

func (s *Server) push(worker int, seq uint64, delta []float64, scale float64) error {
	if len(delta) != s.dim {
		return fmt.Errorf("paramserver: push length %d, want %d", len(delta), s.dim)
	}
	sw := mPushTimer.Start()
	defer sw.Stop()
	for _, sh := range s.shards {
		part := delta[sh.lo : sh.lo+len(sh.w)]
		if allZero(part) {
			continue
		}
		applied := false
		err := s.callShard(func() {
			sh.mu.Lock()
			defer sh.mu.Unlock()
			if worker >= 0 {
				if last, ok := sh.lastSeq[worker]; ok && seq <= last {
					return // duplicate replay of an ack-lost attempt
				}
				sh.lastSeq[worker] = seq
			} else {
				if applied {
					return
				}
				applied = true
			}
			la.Axpy(scale, part, sh.w)
		})
		if err != nil {
			return fmt.Errorf("paramserver: push: %w", err)
		}
	}
	s.pushes.Add(1)
	return nil
}

func allZero(xs []float64) bool {
	for _, v := range xs {
		if v != 0 {
			return false
		}
	}
	return true
}

// callShard runs one logical shard operation through the emulated RPC path:
// latency (plus injected jitter), injected request/ack loss, and bounded
// exponential-backoff retry under the per-op deadline. apply must be
// idempotent — it runs once per delivered attempt, and an ack-lost attempt
// is delivered yet reported failed.
func (s *Server) callShard(apply func()) error {
	var deadline time.Time
	if s.retry.Deadline > 0 {
		deadline = time.Now().Add(s.retry.Deadline)
	}
	backoff := s.retry.BaseBackoff
	for attempt := 0; ; attempt++ {
		s.rpcs.Add(1)
		mRPCs.Inc()
		var fail, ackLoss bool
		var jitter time.Duration
		if s.faults != nil {
			fail, ackLoss, jitter = s.faults.rpcFault()
		}
		if d := s.opLatency + jitter; d > 0 {
			time.Sleep(d)
		}
		if !fail {
			apply()
			if !ackLoss {
				return nil
			}
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			s.timeouts.Add(1)
			mTimeouts.Inc()
			return fmt.Errorf("%w (%v budget, %d attempts)", ErrOpDeadline, s.retry.Deadline, attempt+1)
		}
		if attempt >= s.retry.MaxRetries {
			return fmt.Errorf("%w (%d attempts)", ErrRPCFailed, attempt+1)
		}
		s.retries.Add(1)
		mRetries.Inc()
		if backoff > 0 {
			time.Sleep(backoff)
		}
		backoff = min(2*backoff, s.retry.MaxBackoff)
	}
}

// Stats is a snapshot of the server's cumulative operation counters.
type Stats struct {
	// Pulls and Pushes count completed logical operations.
	Pulls, Pushes int64
	// ShardRPCs counts emulated per-shard RPC attempts (retries included;
	// shards skipped by the sparse-push fast path are not).
	ShardRPCs int64
	// Retries counts RPC attempts beyond the first for an op; Timeouts
	// counts ops abandoned at the RetryPolicy deadline; Recoveries counts
	// worker restarts after injected kills.
	Retries, Timeouts, Recoveries int64
}

// Stats returns a snapshot of the cumulative counters.
func (s *Server) Stats() Stats {
	return Stats{
		Pulls:      s.pulls.Load(),
		Pushes:     s.pushes.Load(),
		ShardRPCs:  s.rpcs.Load(),
		Retries:    s.retries.Load(),
		Timeouts:   s.timeouts.Load(),
		Recoveries: s.recoveries.Load(),
	}
}

// sspClock implements the stale-synchronous-parallel coordination rule: a
// worker about to start tick c+1 blocks until the slowest worker has
// finished tick c−staleness.
type sspClock struct {
	mu     sync.Mutex
	cond   *sync.Cond
	clocks []int
	// maxSkew is the largest clocks[w]−min observed as a worker entered a
	// tick — the SSP invariant bounds it by the staleness (guarded by mu).
	maxSkew int
	// aborted is first-error cancellation: every blocked or about-to-block
	// worker drains out instead of training against a doomed run.
	aborted bool
	// idle accumulates total time workers spent blocked in waitTurn — the
	// coordination cost BSP pays under stragglers.
	idle atomic.Int64
}

func newSSPClock(workers int) *sspClock {
	c := &sspClock{clocks: make([]int, workers)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *sspClock) minClock() int {
	m := math.MaxInt
	for _, v := range c.clocks {
		if v < m {
			m = v
		}
	}
	return m
}

// waitTurn blocks worker w until its next tick respects the staleness bound;
// it returns false if the run was aborted while waiting.
func (c *sspClock) waitTurn(w, staleness int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.clocks[w]-c.minClock() > staleness && !c.aborted {
		start := time.Now()
		for c.clocks[w]-c.minClock() > staleness && !c.aborted {
			c.cond.Wait()
		}
		c.idle.Add(int64(time.Since(start)))
	}
	if c.aborted {
		return false
	}
	if skew := c.clocks[w] - c.minClock(); skew > c.maxSkew {
		c.maxSkew = skew
	}
	return true
}

// advance records that worker w finished one tick.
func (c *sspClock) advance(w int) {
	c.mu.Lock()
	c.clocks[w]++
	c.cond.Broadcast()
	c.mu.Unlock()
}

// finish releases worker w from the clock by setting it to +∞ so stragglers
// do not block others after completion.
func (c *sspClock) finish(w int) {
	c.mu.Lock()
	c.clocks[w] = math.MaxInt / 2
	c.cond.Broadcast()
	c.mu.Unlock()
}

// reenter admits a restarted worker at the current global minimum tick, so
// it rejoins the SSP window without blocking peers or violating the
// staleness bound, and returns the tick it must resume from.
func (c *sspClock) reenter(w int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.minClock()
	c.clocks[w] = m
	c.cond.Broadcast()
	return m
}

// abort triggers first-error cancellation, waking every blocked worker.
func (c *sspClock) abort() {
	c.mu.Lock()
	c.aborted = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

func (c *sspClock) maxSkewSeen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxSkew
}

// Mode names the coordination regime.
type Mode int

// Coordination regimes.
const (
	// BSP barriers every tick (staleness 0).
	BSP Mode = iota
	// SSP allows the configured staleness bound between workers.
	SSP
	// Async runs workers with no coordination at all.
	Async
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case BSP:
		return "bsp"
	case SSP:
		return "ssp"
	case Async:
		return "async"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// TrainConfig configures distributed SGD through the parameter server.
type TrainConfig struct {
	Workers   int
	Epochs    int
	BatchSize int
	Step      float64
	Decay     float64 // per-epoch step decay
	L2        float64
	Mode      Mode
	Staleness int // used when Mode == SSP
	Seed      int64
	// StragglerDelay injects extra per-batch compute time into worker 0,
	// emulating a heterogeneous cluster. BSP's barrier makes every worker
	// wait for the straggler; SSP tolerates it up to the staleness bound;
	// async ignores it — the published parameter-server motivation.
	StragglerDelay time.Duration
	// Faults, if non-nil, is installed into the server for the run: RPC
	// request/ack loss, latency jitter, and deterministic worker kills.
	Faults *FaultConfig
	// Retry, if non-nil, replaces the server's retry policy for the run.
	Retry *RetryPolicy
	// Checkpoint enables periodic model snapshots (see CheckpointConfig);
	// the latest snapshot survives a failed run for restart-from-checkpoint.
	Checkpoint CheckpointConfig
	// MaxWorkerRestarts bounds how many times each killed worker is
	// restarted before the run aborts (0 = a kill is fatal).
	MaxWorkerRestarts int
}

func (c TrainConfig) validate(n int) error {
	if c.Workers < 1 {
		return fmt.Errorf("paramserver: workers must be ≥ 1")
	}
	if c.Epochs < 1 {
		return fmt.Errorf("paramserver: epochs must be ≥ 1")
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("paramserver: batch size must be ≥ 1")
	}
	if c.Step <= 0 {
		return fmt.Errorf("paramserver: step must be > 0")
	}
	if n == 0 {
		return fmt.Errorf("paramserver: empty data")
	}
	if c.Mode == SSP && c.Staleness < 0 {
		return fmt.Errorf("paramserver: negative staleness")
	}
	if c.Checkpoint.Path != "" && c.Checkpoint.Every < 1 {
		return fmt.Errorf("paramserver: checkpoint interval must be ≥ 1 push, got %d", c.Checkpoint.Every)
	}
	if c.MaxWorkerRestarts < 0 {
		return fmt.Errorf("paramserver: negative MaxWorkerRestarts")
	}
	return nil
}

// Result reports a distributed training run.
type Result struct {
	W         []float64
	FinalLoss float64
	Pulls     int64
	Pushes    int64
	// Retries, Timeouts, and Recoveries mirror Stats for the run's server:
	// RPC attempts beyond the first, deadline-abandoned ops, and worker
	// restarts after injected kills.
	Retries    int64
	Timeouts   int64
	Recoveries int64
	// MaxClockSkew is the largest clocks[w]−min observed as any worker
	// entered a tick; the SSP invariant keeps it ≤ the staleness bound.
	MaxClockSkew int
	// WorkerIdle is the total time workers spent blocked on the SSP clock —
	// near zero for async, large for BSP under stragglers.
	WorkerIdle time.Duration
}

// Train runs mini-batch SGD with the given coordination mode: rows are
// partitioned across workers; each batch tick a worker pulls the model,
// computes its mini-batch gradient, and pushes the scaled update.
//
// Under an injected fault model, failed RPCs are retried with backoff, a
// killed worker is restarted up to MaxWorkerRestarts times — re-entering the
// shared clock at the current global minimum tick and recomputing its data
// cursor from it — and any unrecoverable error cancels the whole run
// promptly (first-error cancellation) instead of letting healthy workers
// train a doomed model to completion.
func Train(ps *Server, data opt.RowData, y []float64, loss opt.Loss, cfg TrainConfig) (*Result, error) {
	n := data.Rows()
	if err := cfg.validate(n); err != nil {
		return nil, err
	}
	if len(y) != n {
		return nil, fmt.Errorf("paramserver: %d labels for %d rows", len(y), n)
	}
	if data.Cols() != ps.dim {
		return nil, fmt.Errorf("paramserver: data has %d cols, server dim %d", data.Cols(), ps.dim)
	}
	if cfg.Faults != nil {
		ps.SetFaults(cfg.Faults)
	}
	if cfg.Retry != nil {
		ps.SetRetryPolicy(*cfg.Retry)
	}
	var ck *checkpointer
	if cfg.Checkpoint.Path != "" {
		ck = newCheckpointer(cfg.Checkpoint)
	}
	staleness := cfg.Staleness
	switch cfg.Mode {
	case BSP:
		staleness = 0
	case Async:
		staleness = math.MaxInt / 4
	}
	clock := newSSPClock(cfg.Workers)

	chunk := (n + cfg.Workers - 1) / cfg.Workers
	var wg sync.WaitGroup
	errs := make([]error, cfg.Workers)
	for wkr := 0; wkr < cfg.Workers; wkr++ {
		lo := wkr * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			clock.finish(wkr)
			continue
		}
		wg.Add(1)
		go func(id, lo, hi int) {
			defer wg.Done()
			defer clock.finish(id)
			// Supervisor loop: restart the worker body after an injected
			// kill, re-entering the clock at the current global minimum.
			// The incarnation number keeps push sequences monotone across
			// restarts even though the worker's local state is lost.
			startTick, incarnation := 0, 0
			for {
				err := trainWorker(ps, data, y, loss, cfg, clock, ck, id, lo, hi, staleness, startTick, incarnation)
				switch {
				case err == nil || errors.Is(err, errAborted):
					return
				case errors.Is(err, errKilled) && incarnation < cfg.MaxWorkerRestarts:
					incarnation++
					ps.recoveries.Add(1)
					mRecoveries.Inc()
					startTick = clock.reenter(id)
				default:
					errs[id] = err
					clock.abort()
					return
				}
			}
		}(wkr, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	w, err := ps.Pull()
	if err != nil {
		return nil, fmt.Errorf("paramserver: final pull: %w", err)
	}
	st := ps.Stats()
	return &Result{
		W:            w,
		FinalLoss:    opt.MeanLoss(data, y, w, loss),
		Pulls:        st.Pulls,
		Pushes:       st.Pushes,
		Retries:      st.Retries,
		Timeouts:     st.Timeouts,
		Recoveries:   st.Recoveries,
		MaxClockSkew: clock.maxSkewSeen(),
		WorkerIdle:   time.Duration(clock.idle.Load()),
	}, nil
}

// trainWorker is one incarnation of worker id over rows [lo, hi): it runs
// ticks [startTick, total), deriving epoch and batch position from the tick
// so a restarted incarnation can resume anywhere. The shuffle order is
// reconstructed deterministically from the seed by replaying the per-epoch
// shuffles, so a restart sees exactly the order the lost incarnation did.
func trainWorker(ps *Server, data opt.RowData, y []float64, loss opt.Loss, cfg TrainConfig,
	clock *sspClock, ck *checkpointer, id, lo, hi, staleness, startTick, incarnation int) error {
	span := hi - lo
	ticksPerEpoch := (span + cfg.BatchSize - 1) / cfg.BatchSize
	total := cfg.Epochs * ticksPerEpoch
	rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
	order := rng.Perm(span)
	shuffle := func() {
		rng.Shuffle(span, func(a, b int) { order[a], order[b] = order[b], order[a] })
	}
	for e := 0; e < startTick/ticksPerEpoch; e++ {
		shuffle()
	}
	grad := make([]float64, ps.dim)
	seq := uint64(incarnation) << 32
	for t := startTick; t < total; t++ {
		if t != startTick && t%ticksPerEpoch == 0 {
			shuffle()
		}
		if !clock.waitTurn(id, staleness) {
			return errAborted
		}
		if ps.faults != nil && ps.faults.shouldKill(id, t) {
			return fmt.Errorf("worker %d crashed at tick %d: %w", id, t, errKilled)
		}
		if id == 0 && cfg.StragglerDelay > 0 {
			time.Sleep(cfg.StragglerDelay)
		}
		w, err := ps.Pull()
		if err != nil {
			return fmt.Errorf("paramserver: worker %d tick %d: %w", id, t, err)
		}
		e := t / ticksPerEpoch
		b := (t % ticksPerEpoch) * cfg.BatchSize
		bEnd := min(b+cfg.BatchSize, span)
		opt.BatchGradientInto(data, y, w, loss, cfg.L2, order[b:bEnd], lo, grad)
		step := cfg.Step / (1 + cfg.Decay*float64(e))
		seq++
		if err := ps.pushFrom(id, seq, grad, -step/float64(bEnd-b)); err != nil {
			return fmt.Errorf("paramserver: worker %d tick %d: %w", id, t, err)
		}
		if ck != nil {
			if err := ck.maybe(ps); err != nil {
				return fmt.Errorf("paramserver: worker %d: %w", id, err)
			}
		}
		clock.advance(id)
	}
	return nil
}
