// Package paramserver simulates a sharded parameter server in-process, the
// distributed-ML substrate the paper surveys: model weights are partitioned
// across shards, workers pull the current model and push gradients, and
// coordination follows the stale-synchronous-parallel (SSP) spectrum —
// staleness 0 is BSP (barrier per clock tick), unbounded staleness is fully
// asynchronous. Optional per-operation latency injection emulates network
// round trips so the BSP-vs-async throughput shape is observable on a single
// machine.
package paramserver

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dmml/internal/la"
	"dmml/internal/opt"
)

// Server is a sharded parameter vector with pull/push access.
type Server struct {
	shards []*shard
	dim    int
	pulls  atomic.Int64
	pushes atomic.Int64
	// opLatency is injected before every shard RPC to emulate the network.
	opLatency time.Duration
}

type shard struct {
	mu sync.Mutex
	lo int // global index of w[0]
	w  []float64
}

// NewServer creates a parameter server for a dim-dimensional model split
// across the given number of shards.
func NewServer(dim, shards int, opLatency time.Duration) (*Server, error) {
	if dim < 1 {
		return nil, fmt.Errorf("paramserver: dim must be ≥ 1, got %d", dim)
	}
	if shards < 1 || shards > dim {
		return nil, fmt.Errorf("paramserver: shards=%d out of range for dim=%d", shards, dim)
	}
	s := &Server{dim: dim, opLatency: opLatency}
	chunk := (dim + shards - 1) / shards
	for lo := 0; lo < dim; lo += chunk {
		hi := min(lo+chunk, dim)
		s.shards = append(s.shards, &shard{lo: lo, w: make([]float64, hi-lo)})
	}
	return s, nil
}

// NumShards returns the shard count.
func (s *Server) NumShards() int { return len(s.shards) }

// Pull gathers the full model (one emulated RPC per shard).
func (s *Server) Pull() []float64 {
	out := make([]float64, s.dim)
	for _, sh := range s.shards {
		s.rpc()
		sh.mu.Lock()
		copy(out[sh.lo:], sh.w)
		sh.mu.Unlock()
	}
	s.pulls.Add(1)
	return out
}

// Push applies w += scale·delta across shards (one emulated RPC per shard
// that receives a non-zero slice).
func (s *Server) Push(delta []float64, scale float64) error {
	if len(delta) != s.dim {
		return fmt.Errorf("paramserver: push length %d, want %d", len(delta), s.dim)
	}
	for _, sh := range s.shards {
		s.rpc()
		sh.mu.Lock()
		la.Axpy(scale, delta[sh.lo:sh.lo+len(sh.w)], sh.w)
		sh.mu.Unlock()
	}
	s.pushes.Add(1)
	return nil
}

// Stats returns cumulative pull/push counts.
func (s *Server) Stats() (pulls, pushes int64) {
	return s.pulls.Load(), s.pushes.Load()
}

func (s *Server) rpc() {
	if s.opLatency > 0 {
		time.Sleep(s.opLatency)
	}
}

// sspClock implements the stale-synchronous-parallel coordination rule: a
// worker about to start tick c+1 blocks until the slowest worker has
// finished tick c−staleness.
type sspClock struct {
	mu     sync.Mutex
	cond   *sync.Cond
	clocks []int
	// idle accumulates total time workers spent blocked in waitTurn — the
	// coordination cost BSP pays under stragglers.
	idle atomic.Int64
}

func newSSPClock(workers int) *sspClock {
	c := &sspClock{clocks: make([]int, workers)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *sspClock) minClock() int {
	m := math.MaxInt
	for _, v := range c.clocks {
		if v < m {
			m = v
		}
	}
	return m
}

// waitTurn blocks worker w until its next tick respects the staleness bound.
func (c *sspClock) waitTurn(w, staleness int) {
	c.mu.Lock()
	if c.clocks[w]-c.minClock() > staleness {
		start := time.Now()
		for c.clocks[w]-c.minClock() > staleness {
			c.cond.Wait()
		}
		c.idle.Add(int64(time.Since(start)))
	}
	c.mu.Unlock()
}

// advance records that worker w finished one tick.
func (c *sspClock) advance(w int) {
	c.mu.Lock()
	c.clocks[w]++
	c.cond.Broadcast()
	c.mu.Unlock()
}

// finish releases worker w from the clock by setting it to +∞ so stragglers
// do not block others after completion.
func (c *sspClock) finish(w int) {
	c.mu.Lock()
	c.clocks[w] = math.MaxInt / 2
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Mode names the coordination regime.
type Mode int

// Coordination regimes.
const (
	// BSP barriers every tick (staleness 0).
	BSP Mode = iota
	// SSP allows the configured staleness bound between workers.
	SSP
	// Async runs workers with no coordination at all.
	Async
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case BSP:
		return "bsp"
	case SSP:
		return "ssp"
	case Async:
		return "async"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// TrainConfig configures distributed SGD through the parameter server.
type TrainConfig struct {
	Workers   int
	Epochs    int
	BatchSize int
	Step      float64
	Decay     float64 // per-epoch step decay
	L2        float64
	Mode      Mode
	Staleness int // used when Mode == SSP
	Seed      int64
	// StragglerDelay injects extra per-batch compute time into worker 0,
	// emulating a heterogeneous cluster. BSP's barrier makes every worker
	// wait for the straggler; SSP tolerates it up to the staleness bound;
	// async ignores it — the published parameter-server motivation.
	StragglerDelay time.Duration
}

func (c TrainConfig) validate(n int) error {
	if c.Workers < 1 {
		return fmt.Errorf("paramserver: workers must be ≥ 1")
	}
	if c.Epochs < 1 {
		return fmt.Errorf("paramserver: epochs must be ≥ 1")
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("paramserver: batch size must be ≥ 1")
	}
	if c.Step <= 0 {
		return fmt.Errorf("paramserver: step must be > 0")
	}
	if n == 0 {
		return fmt.Errorf("paramserver: empty data")
	}
	if c.Mode == SSP && c.Staleness < 0 {
		return fmt.Errorf("paramserver: negative staleness")
	}
	return nil
}

// Result reports a distributed training run.
type Result struct {
	W         []float64
	FinalLoss float64
	Pulls     int64
	Pushes    int64
	// WorkerIdle is the total time workers spent blocked on the SSP clock —
	// near zero for async, large for BSP under stragglers.
	WorkerIdle time.Duration
}

// Train runs mini-batch SGD with the given coordination mode: rows are
// partitioned across workers; each batch tick a worker pulls the model,
// computes its mini-batch gradient, and pushes the scaled update.
func Train(ps *Server, data opt.RowData, y []float64, loss opt.Loss, cfg TrainConfig) (*Result, error) {
	n := data.Rows()
	if err := cfg.validate(n); err != nil {
		return nil, err
	}
	if len(y) != n {
		return nil, fmt.Errorf("paramserver: %d labels for %d rows", len(y), n)
	}
	if data.Cols() != ps.dim {
		return nil, fmt.Errorf("paramserver: data has %d cols, server dim %d", data.Cols(), ps.dim)
	}
	staleness := cfg.Staleness
	switch cfg.Mode {
	case BSP:
		staleness = 0
	case Async:
		staleness = math.MaxInt / 4
	}
	clock := newSSPClock(cfg.Workers)

	chunk := (n + cfg.Workers - 1) / cfg.Workers
	var wg sync.WaitGroup
	errs := make([]error, cfg.Workers)
	for wkr := 0; wkr < cfg.Workers; wkr++ {
		lo := wkr * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			clock.finish(wkr)
			continue
		}
		wg.Add(1)
		go func(id, lo, hi int) {
			defer wg.Done()
			defer clock.finish(id)
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
			span := hi - lo
			order := rng.Perm(span)
			grad := make([]float64, ps.dim)
			for e := 0; e < cfg.Epochs; e++ {
				step := cfg.Step / (1 + cfg.Decay*float64(e))
				for b := 0; b < span; b += cfg.BatchSize {
					clock.waitTurn(id, staleness)
					if id == 0 && cfg.StragglerDelay > 0 {
						time.Sleep(cfg.StragglerDelay)
					}
					w := ps.Pull()
					for j := range grad {
						grad[j] = cfg.L2 * w[j]
					}
					bEnd := min(b+cfg.BatchSize, span)
					for _, k := range order[b:bEnd] {
						i := lo + k
						x := data.Row(i)
						g := loss.Deriv(la.Dot(w, x), y[i])
						if g != 0 {
							la.Axpy(g, x, grad)
						}
					}
					scale := -step / float64(bEnd-b)
					if err := ps.Push(grad, scale); err != nil {
						errs[id] = err
						return
					}
					clock.advance(id)
				}
				rng.Shuffle(span, func(a, b int) { order[a], order[b] = order[b], order[a] })
			}
		}(wkr, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	w := ps.Pull()
	pulls, pushes := ps.Stats()
	return &Result{
		W:          w,
		FinalLoss:  opt.MeanLoss(data, y, w, loss),
		Pulls:      pulls,
		Pushes:     pushes,
		WorkerIdle: time.Duration(clock.idle.Load()),
	}, nil
}
