package paramserver

import (
	"fmt"
	"sync/atomic"

	"dmml/internal/storage"
)

// CheckpointConfig enables periodic model checkpointing during Train: every
// Every global pushes, the crossing worker pulls the full model and persists
// it (with the push clock) through storage.WriteCheckpoint's atomic-rename
// path. The zero value disables checkpointing.
type CheckpointConfig struct {
	Path  string
	Every int
}

// checkpointer triggers at most one snapshot per Every-push window; the CAS
// on next elects a single writer among concurrently finishing workers.
type checkpointer struct {
	path  string
	every int64
	next  atomic.Int64
	taken atomic.Int64
}

func newCheckpointer(cfg CheckpointConfig) *checkpointer {
	c := &checkpointer{path: cfg.Path, every: int64(cfg.Every)}
	c.next.Store(int64(cfg.Every))
	return c
}

// maybe checkpoints the server model if the global push count crossed the
// next threshold; called by workers after each successful push.
func (c *checkpointer) maybe(ps *Server) error {
	n := ps.pushes.Load()
	for {
		nx := c.next.Load()
		if n < nx {
			return nil
		}
		if c.next.CompareAndSwap(nx, nx+c.every) {
			break
		}
	}
	w, err := ps.Pull()
	if err != nil {
		return fmt.Errorf("paramserver: checkpoint pull: %w", err)
	}
	if err := storage.WriteCheckpoint(c.path, uint64(n), w); err != nil {
		return fmt.Errorf("paramserver: %w", err)
	}
	c.taken.Add(1)
	return nil
}

// LoadCheckpoint reads a model checkpoint written during Train, returning
// the global push clock it was taken at and the model weights.
func LoadCheckpoint(path string) (clock uint64, w []float64, err error) {
	return storage.ReadCheckpoint(path)
}

// SetWeights overwrites the full model, scattering w across shards. It is
// the restore half of checkpointing and bypasses the emulated RPC path.
func (s *Server) SetWeights(w []float64) error {
	if len(w) != s.dim {
		return fmt.Errorf("paramserver: SetWeights length %d, want %d", len(w), s.dim)
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		copy(sh.w, w[sh.lo:sh.lo+len(sh.w)])
		sh.mu.Unlock()
	}
	return nil
}

// RestoreFromCheckpoint loads the checkpoint at path into the server and
// returns the global push clock it was taken at.
func (s *Server) RestoreFromCheckpoint(path string) (uint64, error) {
	clock, w, err := LoadCheckpoint(path)
	if err != nil {
		return 0, err
	}
	if err := s.SetWeights(w); err != nil {
		return 0, err
	}
	return clock, nil
}
