// Package pool is the shared execution engine under dmml's hot kernels: a
// persistent, lazily-started worker pool with dynamic chunk scheduling, plus
// a size-bucketed scratch allocator for kernel temporaries.
//
// Why not per-call goroutines? Iterative training (SGD/GD) calls MatVec and
// VecMat thousands of times per fit; spawning GOMAXPROCS goroutines per call
// costs scheduling latency and garbage on every iteration. The pool starts
// its workers once and hands them work through a small channel of job
// descriptors.
//
// Why dynamic chunks? Static contiguous chunking serializes on the slowest
// chunk whenever work is skewed — GEMM rows with many zeros, CLA column
// groups of wildly different encodings, sparse rows of unequal density. Here
// workers claim fixed-size chunks off a shared atomic index, so a worker that
// finishes early steals the remaining range instead of idling.
//
// Nesting is safe: a worker that calls Do again simply runs the inner job on
// its own goroutine (enqueue is non-blocking), so compressed kernels can call
// dense kernels freely without deadlock.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"

	"dmml/internal/metrics"
)

// Observability instruments (no-ops until metrics.Enable). Chunk counts are
// incremented once per claimed chunk — chunks carry ≥ ~16K scalar ops, so
// even enabled collection is noise next to the work itself. "Steals" are
// chunks executed by recruited helpers rather than the submitting
// goroutine: steals/claims is the fraction of work the pool actually
// offloaded, and helpers-recruited vs do-calls exposes utilization.
var (
	mDoCalls    = metrics.NewCounter("pool.do.calls")
	mDoSerial   = metrics.NewCounter("pool.do.serial")
	mChunks     = metrics.NewCounter("pool.chunks.claimed")
	mSteals     = metrics.NewCounter("pool.chunks.stolen")
	mHelpers    = metrics.NewCounter("pool.helpers.recruited")
	mQueueDepth = metrics.NewGauge("pool.queue.depth")
)

// job is one parallel-for: workers claim [lo,hi) chunks off next until n is
// exhausted. Each participating goroutine reserves a distinct slot so callers
// can maintain per-worker partial accumulators.
type job struct {
	next  atomic.Int64
	slots atomic.Int64
	n     int64
	grain int64
	fn    func(slot, lo, hi int)
	wg    sync.WaitGroup
}

// run claims chunks until the job is drained. Called by at most Workers()
// goroutines per job, each under a unique slot. helper marks recruited
// workers (as opposed to the goroutine that submitted the job) so stolen
// chunks can be counted.
func (j *job) run(helper bool) {
	slot := int(j.slots.Add(1) - 1)
	for {
		lo := j.next.Add(j.grain) - j.grain
		if lo >= j.n {
			return
		}
		hi := lo + j.grain
		if hi > j.n {
			hi = j.n
		}
		mChunks.Inc()
		if helper {
			mSteals.Inc()
		}
		j.fn(slot, int(lo), int(hi))
	}
}

var (
	startOnce sync.Once
	jobs      chan *job
	poolSize  int
	jobPool   = sync.Pool{New: func() any { return new(job) }}
)

// start launches the resident helper goroutines. They live for the process
// lifetime and are blocked on a channel receive when idle, which costs
// nothing while the program is doing serial work. The pool is sized once, to
// max(GOMAXPROCS, NumCPU, 4): per-call parallelism is bounded by the
// GOMAXPROCS current at that call, so oversizing costs only idle goroutines
// while keeping helpers available if GOMAXPROCS is raised later (tests do
// this; so do servers that start pinned and widen after warm-up).
func start() {
	poolSize = runtime.GOMAXPROCS(0)
	if n := runtime.NumCPU(); n > poolSize {
		poolSize = n
	}
	if poolSize < 4 {
		poolSize = 4
	}
	jobs = make(chan *job, poolSize)
	for i := 0; i < poolSize-1; i++ {
		go func() {
			for j := range jobs {
				j.run(true)
				j.wg.Done()
			}
		}()
	}
}

// Workers returns the number of scheduling slots, i.e. the upper bound
// (exclusive) on the slot argument passed to a Do callback. Size per-worker
// accumulator arrays with this.
func Workers() int {
	startOnce.Do(start)
	return poolSize
}

// Do runs fn over [0,n) split into dynamically scheduled chunks of at most
// grain items. fn is invoked with a slot in [0, Workers()) that is unique
// among the goroutines concurrently executing this call, so callers can index
// per-worker partial accumulators by slot. Chunks are claimed in order off a
// shared atomic counter: skewed per-item cost rebalances automatically
// instead of serializing on the slowest static chunk.
//
// Do returns after every chunk has completed. It is safe to call from inside
// an fn of an outer Do (the inner call runs on the calling goroutine when no
// helpers are free).
func Do(n, grain int, fn func(slot, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	startOnce.Do(start)
	mDoCalls.Inc()
	procs := runtime.GOMAXPROCS(0)
	if procs <= 1 || n <= grain {
		mDoSerial.Inc()
		fn(0, 0, n)
		return
	}
	j := jobPool.Get().(*job)
	j.next.Store(0)
	j.slots.Store(0)
	j.n = int64(n)
	j.grain = int64(grain)
	j.fn = fn
	// Offer the job to idle helpers without blocking; the caller always
	// participates, so a full channel just means less parallelism, never a
	// stall. Cap helpers at current GOMAXPROCS and at the number of chunks
	// beyond the caller's first.
	maxHelpers := procs - 1
	if poolSize-1 < maxHelpers {
		maxHelpers = poolSize - 1
	}
	if c := int((int64(n) + int64(grain) - 1) / int64(grain)); c-1 < maxHelpers {
		maxHelpers = c - 1
	}
	if metrics.Enabled() {
		mQueueDepth.Set(float64(len(jobs)))
	}
	recruited := 0
	for h := 0; h < maxHelpers; h++ {
		j.wg.Add(1)
		select {
		case jobs <- j:
			recruited++
		default:
			j.wg.Done()
			h = maxHelpers // no idle helpers; stop offering
		}
	}
	mHelpers.Add(int64(recruited))
	j.run(false)
	j.wg.Wait()
	j.fn = nil
	jobPool.Put(j)
}

// SerialNow reports whether Do would currently run jobs serially
// (GOMAXPROCS is 1). Kernels use it to skip setting up per-worker partial
// accumulators that a serial run would never touch.
func SerialNow() bool {
	return runtime.GOMAXPROCS(0) <= 1
}

// Grain picks a chunk size for a parallel-for of n items where each item
// costs roughly itemWork scalar operations. It targets enough chunks per
// worker for dynamic load balancing (so skewed items rebalance) while keeping
// each chunk heavy enough to amortize the atomic claim and cache traffic.
//dmml:noalloc
func Grain(n, itemWork int) int {
	if n <= 0 {
		return 1
	}
	if itemWork < 1 {
		itemWork = 1
	}
	// ~8 chunks per worker gives the scheduler room to rebalance skew.
	target := Workers() * 8
	g := (n + target - 1) / target
	// Keep at least minChunkWork scalar ops per chunk.
	const minChunkWork = 1 << 14
	if g*itemWork < minChunkWork {
		g = (minChunkWork + itemWork - 1) / itemWork
	}
	if g > n {
		g = n
	}
	if g < 1 {
		g = 1
	}
	return g
}
