package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestDoCoversRange: every index in [0,n) is visited exactly once, for a
// spread of n/grain combinations including n <= grain (serial fallback) and
// grain = 1 (maximal chunking).
func TestDoCoversRange(t *testing.T) {
	for _, tc := range []struct{ n, grain int }{
		{1, 1}, {7, 1}, {7, 3}, {7, 100}, {100, 7}, {1024, 64}, {1000, 1},
	} {
		visits := make([]atomic.Int32, tc.n)
		Do(tc.n, tc.grain, func(_, lo, hi int) {
			if lo < 0 || hi > tc.n || lo >= hi {
				t.Errorf("Do(%d,%d): bad chunk [%d,%d)", tc.n, tc.grain, lo, hi)
			}
			for i := lo; i < hi; i++ {
				visits[i].Add(1)
			}
		})
		for i := range visits {
			if got := visits[i].Load(); got != 1 {
				t.Fatalf("Do(%d,%d): index %d visited %d times", tc.n, tc.grain, i, got)
			}
		}
	}
}

// TestDoZeroAndNegative: degenerate ranges never invoke fn.
func TestDoZeroAndNegative(t *testing.T) {
	called := false
	Do(0, 4, func(_, _, _ int) { called = true })
	Do(-3, 4, func(_, _, _ int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

// withProcs runs f with GOMAXPROCS raised to n so the parallel path is
// exercised even on single-core machines (per-call parallelism follows the
// current GOMAXPROCS, not the value at pool start).
func withProcs(t *testing.T, n int, f func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	f()
}

// TestDoSlotsExclusive: no two goroutines concurrently share a slot, and all
// slots are below Workers().
func TestDoSlotsExclusive(t *testing.T) {
	withProcs(t, 4, func() { testDoSlotsExclusive(t) })
}

func testDoSlotsExclusive(t *testing.T) {
	w := Workers()
	inUse := make([]atomic.Int32, w)
	Do(10_000, 1, func(slot, lo, hi int) {
		if slot < 0 || slot >= w {
			t.Errorf("slot %d out of range [0,%d)", slot, w)
			return
		}
		if !inUse[slot].CompareAndSwap(0, 1) {
			t.Errorf("slot %d used concurrently", slot)
			return
		}
		defer inUse[slot].Store(0)
		// A little work so chunks overlap in time when parallel.
		s := 0.0
		for i := lo; i < hi; i++ {
			s += float64(i)
		}
		_ = s
	})
}

// TestEvenDistribution is the regression test for the static-chunk imbalance:
// with rows barely exceeding the worker count, static chunking used to make
// ceil(rows/procs)-sized chunks, leaving the last chunk near-empty while
// others were double-sized. Dynamic scheduling must never hand out a chunk
// larger than grain, so work splits evenly no matter how rows relates to the
// worker count.
func TestEvenDistribution(t *testing.T) {
	withProcs(t, 4, func() { testEvenDistribution(t) })
}

func testEvenDistribution(t *testing.T) {
	for _, n := range []int{Workers() + 1, 2*Workers() - 1, 5, 17} {
		var mu sync.Mutex
		sizes := []int{}
		Do(n, 1, func(_, lo, hi int) {
			mu.Lock()
			sizes = append(sizes, hi-lo)
			mu.Unlock()
		})
		if len(sizes) != n {
			t.Fatalf("n=%d grain=1: got %d chunks, want %d", n, len(sizes), n)
		}
		for _, s := range sizes {
			if s != 1 {
				t.Fatalf("n=%d grain=1: chunk of size %d, want every chunk == grain", n, s)
			}
		}
	}
	// With a coarser grain, every chunk is still bounded by grain and the
	// spread between the largest and smallest chunk is at most grain — the
	// old static scheme could differ by a whole chunk multiple.
	const n, grain = 103, 10
	var mu sync.Mutex
	total, maxSz := 0, 0
	Do(n, grain, func(_, lo, hi int) {
		mu.Lock()
		total += hi - lo
		if hi-lo > maxSz {
			maxSz = hi - lo
		}
		mu.Unlock()
	})
	if total != n {
		t.Fatalf("chunks cover %d of %d items", total, n)
	}
	if maxSz > grain {
		t.Fatalf("chunk size %d exceeds grain %d", maxSz, grain)
	}
}

// TestNestedDo: Do from inside Do must not deadlock and must still cover the
// inner range (the inner call runs inline when no helpers are idle).
func TestNestedDo(t *testing.T) {
	withProcs(t, 4, func() { testNestedDo(t) })
}

func testNestedDo(t *testing.T) {
	var outer, inner atomic.Int64
	Do(64, 1, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			outer.Add(1)
			Do(32, 4, func(_, l, h int) {
				inner.Add(int64(h - l))
			})
		}
	})
	if outer.Load() != 64 || inner.Load() != 64*32 {
		t.Fatalf("outer=%d inner=%d, want 64 and %d", outer.Load(), inner.Load(), 64*32)
	}
}

// TestDoReuseIsClean: back-to-back jobs (job structs are recycled) never leak
// state between runs.
func TestDoReuseIsClean(t *testing.T) {
	for iter := 0; iter < 200; iter++ {
		var sum atomic.Int64
		n := 1 + iter%17
		Do(n, 2, func(_, lo, hi int) {
			sum.Add(int64(hi - lo))
		})
		if got := sum.Load(); got != int64(n) {
			t.Fatalf("iter %d: covered %d of %d", iter, got, n)
		}
	}
}

func TestGrain(t *testing.T) {
	if g := Grain(0, 100); g != 1 {
		t.Errorf("Grain(0,100)=%d, want 1", g)
	}
	for _, tc := range []struct{ n, itemWork int }{
		{10, 1}, {1000, 1}, {1000, 1 << 20}, {1 << 20, 8}, {3, 1 << 30},
	} {
		g := Grain(tc.n, tc.itemWork)
		if g < 1 || g > tc.n {
			t.Errorf("Grain(%d,%d)=%d out of [1,%d]", tc.n, tc.itemWork, g, tc.n)
		}
	}
	// Heavy items must split into at least a few chunks per worker so
	// dynamic scheduling has room to rebalance.
	if g, lim := Grain(100, 1<<20), (100+Workers()-1)/Workers(); g > lim {
		t.Errorf("Grain(100, 1<<20)=%d, want <= %d (at least one chunk per worker)", g, lim)
	}
}

func TestScratchBasics(t *testing.T) {
	if buf := GetF64(0); buf != nil {
		t.Errorf("GetF64(0) = %v, want nil", buf)
	}
	buf := GetF64(100)
	if len(buf) != 100 {
		t.Fatalf("GetF64(100) len %d", len(buf))
	}
	for i := range buf {
		buf[i] = 7
	}
	PutF64(buf)
	z := GetF64Zeroed(100)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetF64Zeroed: z[%d]=%v", i, v)
		}
	}
	PutF64(z)
	// Oversized requests bypass the pool but still work.
	big := GetF64(1<<scratchMaxBits + 1)
	if len(big) != 1<<scratchMaxBits+1 {
		t.Fatalf("oversized GetF64 len %d", len(big))
	}
	PutF64(big) // dropped, must not panic
	// Foreign buffers with non-class capacities are silently dropped.
	PutF64(make([]float64, 100))
}

// TestScratchSteadyStateAllocs: after warm-up, a Get/Put cycle performs no
// allocations — the property the opt/la hot loops rely on.
func TestScratchSteadyStateAllocs(t *testing.T) {
	for i := 0; i < 4; i++ {
		PutF64(GetF64(4096)) // warm the class freelist
	}
	allocs := testing.AllocsPerRun(100, func() {
		b := GetF64(4096)
		PutF64(b)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Put allocates %v times per run, want 0", allocs)
	}
}

// TestDoParallelAtHigherGOMAXPROCS exercises the multi-worker path even on a
// single-core machine by raising GOMAXPROCS; note the pool's worker count is
// fixed at first use, so this only widens the schedulable set.
func TestDoParallelAtHigherGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	visits := make([]atomic.Int32, 50_000)
	Do(len(visits), 128, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			visits[i].Add(1)
		}
	})
	for i := range visits {
		if visits[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, visits[i].Load())
		}
	}
}

func TestIntScratchBasics(t *testing.T) {
	if buf := GetInt(0); buf != nil {
		t.Errorf("GetInt(0) = %v, want nil", buf)
	}
	buf := GetInt(100)
	if len(buf) != 100 {
		t.Fatalf("GetInt(100) len %d", len(buf))
	}
	for i := range buf {
		buf[i] = 7
	}
	PutInt(buf)
	// Oversized requests bypass the pool but still work.
	big := GetInt(1<<scratchMaxBits + 1)
	if len(big) != 1<<scratchMaxBits+1 {
		t.Fatalf("oversized GetInt len %d", len(big))
	}
	PutInt(big) // dropped, must not panic
	// Foreign buffers with non-class capacities are silently dropped.
	PutInt(make([]int, 100))
}

// TestIntScratchSteadyStateAllocs: the int freelist mirrors the float64 one —
// a warm Get/Put cycle must not allocate (the factorized key-composition
// kernels rely on this).
func TestIntScratchSteadyStateAllocs(t *testing.T) {
	for i := 0; i < 4; i++ {
		PutInt(GetInt(4096))
	}
	allocs := testing.AllocsPerRun(100, func() {
		b := GetInt(4096)
		PutInt(b)
	})
	if allocs != 0 {
		t.Fatalf("steady-state GetInt/PutInt allocates %v times per run, want 0", allocs)
	}
}

// TestIntScratchReuse: a returned buffer is handed back on the next Get of
// the same class.
func TestIntScratchReuse(t *testing.T) {
	a := GetInt(512)
	PutInt(a)
	b := GetInt(512)
	if &a[0] != &b[0] {
		t.Error("GetInt did not reuse the returned buffer")
	}
	PutInt(b)
}
