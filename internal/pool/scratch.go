package pool

import "sync"

// Scratch allocator: size-bucketed freelists of float64 slices. Kernels that
// need short-lived temporaries (packed GEMM panels, per-worker partial
// accumulators, premultiplied dictionaries) borrow buffers here instead of
// allocating per call, so iterative training reaches a zero-allocation steady
// state.
//
// A mutex-guarded stack per power-of-two size class is used rather than
// sync.Pool: Put into a sync.Pool boxes the slice header and allocates on
// every call, which is exactly the steady-state garbage this allocator
// exists to remove. Retention per class is capped (scratchClassBudget bytes),
// so the resident scratch footprint is bounded; buffers beyond the cap — and
// requests beyond the largest class — fall through to the GC.
//
// Contract: GetF64 returns a slice with arbitrary contents; GetF64Zeroed
// returns an all-zero slice. PutF64 recycles a buffer obtained from either.
// Buffers must not be used after PutF64.

const (
	scratchMinBits = 6  // smallest bucket: 64 floats (512 B)
	scratchMaxBits = 22 // largest bucket: 4M floats (32 MB)

	// scratchClassBudget caps the bytes parked on any one class freelist.
	scratchClassBudget = 32 << 20
)

type scratchFreelist struct {
	mu   sync.Mutex
	bufs [][]float64
	max  int // retention cap for this class
}

// intFreelist mirrors scratchFreelist for []int buffers — the typed scratch
// behind join-key arrays (composed foreign keys, radix/counting passes) in
// the factorized engine.
type intFreelist struct {
	mu   sync.Mutex
	bufs [][]int
	max  int
}

var (
	scratchClasses [scratchMaxBits - scratchMinBits + 1]scratchFreelist
	intScratch     [scratchMaxBits - scratchMinBits + 1]intFreelist
)

func init() {
	for c := range scratchClasses {
		classBytes := 8 << (scratchMinBits + c)
		n := scratchClassBudget / classBytes
		if n > 64 {
			n = 64
		}
		scratchClasses[c].max = n // >= 1: largest class is exactly the budget
		intScratch[c].max = n     // int is 8 bytes on every supported platform
	}
}

// scratchClass returns the bucket index for a request of n floats, or -1 when
// the request is outside the pooled range and should be plainly allocated.
//dmml:noalloc
func scratchClass(n int) int {
	if n > 1<<scratchMaxBits {
		return -1
	}
	c := 0
	for 1<<(scratchMinBits+c) < n {
		c++
	}
	return c
}

// GetF64 returns a length-n scratch slice with unspecified contents.
func GetF64(n int) []float64 {
	if n <= 0 {
		return nil
	}
	c := scratchClass(n)
	if c < 0 {
		return make([]float64, n)
	}
	fl := &scratchClasses[c]
	fl.mu.Lock()
	if k := len(fl.bufs); k > 0 {
		buf := fl.bufs[k-1]
		fl.bufs[k-1] = nil
		fl.bufs = fl.bufs[:k-1]
		fl.mu.Unlock()
		return buf[:n]
	}
	fl.mu.Unlock()
	return make([]float64, n, 1<<(scratchMinBits+c))
}

// GetF64Zeroed returns a length-n all-zero scratch slice.
func GetF64Zeroed(n int) []float64 {
	buf := GetF64(n)
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// GetInt returns a length-n scratch []int with unspecified contents. It is
// the integer twin of GetF64, pooled under the same size classes; pair every
// GetInt with PutInt.
func GetInt(n int) []int {
	if n <= 0 {
		return nil
	}
	c := scratchClass(n)
	if c < 0 {
		return make([]int, n)
	}
	fl := &intScratch[c]
	fl.mu.Lock()
	if k := len(fl.bufs); k > 0 {
		buf := fl.bufs[k-1]
		fl.bufs[k-1] = nil
		fl.bufs = fl.bufs[:k-1]
		fl.mu.Unlock()
		return buf[:n]
	}
	fl.mu.Unlock()
	return make([]int, n, 1<<(scratchMinBits+c))
}

// PutInt returns an int scratch slice to the pool; like PutF64, foreign or
// over-cap buffers are dropped for the GC.
func PutInt(buf []int) {
	c := cap(buf)
	if c < 1<<scratchMinBits || c > 1<<scratchMaxBits || c&(c-1) != 0 {
		return
	}
	fl := &intScratch[scratchClass(c)]
	fl.mu.Lock()
	if len(fl.bufs) < fl.max {
		fl.bufs = append(fl.bufs, buf[:c])
	}
	fl.mu.Unlock()
}

// PutF64 returns a scratch slice to the pool. Slices whose capacity is not a
// pooled size class (or whose class is at its retention cap) are dropped for
// the GC, so passing foreign buffers is harmless.
func PutF64(buf []float64) {
	c := cap(buf)
	if c < 1<<scratchMinBits || c > 1<<scratchMaxBits || c&(c-1) != 0 {
		return
	}
	cls := scratchClass(c)
	fl := &scratchClasses[cls]
	fl.mu.Lock()
	if len(fl.bufs) < fl.max {
		fl.bufs = append(fl.bufs, buf[:c])
	}
	fl.mu.Unlock()
}
