// Package vet is dmml's engine-specific static-analysis framework. The
// engine's performance story rests on a handful of resource invariants —
// pooled scratch buffers are returned, metric spans are closed, instruments
// are registered once, annotated hot kernels stay allocation-free, lock
// regions are balanced — that until now were enforced only dynamically
// (AllocsPerRun pins, race runs). This package proves them at build time:
// every package of the module is parsed and type-checked (stdlib go/ast +
// go/types only; the module stays dependency-free and buildable offline),
// then a set of analyzers walks the typed ASTs and reports violations as
// file:line:col diagnostics. cmd/dmmlvet is the CLI and CI gate.
//
// Annotation vocabulary (function doc-comment directives):
//
//	//dmml:owns-scratch  the function intentionally lets a pool.GetF64
//	                     buffer escape (returns it, stores it in a struct);
//	                     ownership — and the PutF64 obligation — transfers
//	                     to the caller, so scratchpair does not track it.
//	//dmml:noalloc       the function is a hot kernel that must not contain
//	                     allocating constructs, and neither may anything it
//	                     statically calls inside the module. The static twin
//	                     of an AllocsPerRun==0 pin.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is the per-(analyzer, package) invocation context.
type Pass struct {
	*Package
	Analyzer *Analyzer
	// Module gives analyzers that follow calls across package boundaries
	// (noalloc) access to every loaded package. Nil for single-package runs
	// that don't need it.
	Module   *Module
	findings *[]Finding
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers is the full suite, in reporting order.
var Analyzers = []*Analyzer{
	AnalyzerScratchPair,
	AnalyzerSpanPair,
	AnalyzerInstrumentInit,
	AnalyzerNoAlloc,
	AnalyzerLockDiscipline,
}

// Run executes the given analyzers over the given packages of mod and
// returns all findings sorted by position.
func Run(mod *Module, pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Package: pkg, Analyzer: a, Module: mod, findings: &findings}
			a.Run(pass)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings
}

// ---- directive helpers ----

// funcDirectives returns the set of //dmml: directives in a function's doc
// comment, e.g. {"noalloc": true}.
func funcDirectives(fd *ast.FuncDecl) map[string]bool {
	return commentDirectives(fd.Doc)
}

func commentDirectives(doc *ast.CommentGroup) map[string]bool {
	if doc == nil {
		return nil
	}
	var dirs map[string]bool
	for _, c := range doc.List {
		if rest, ok := strings.CutPrefix(c.Text, "//dmml:"); ok {
			name := strings.TrimSpace(rest)
			if name != "" {
				if dirs == nil {
					dirs = make(map[string]bool)
				}
				dirs[name] = true
			}
		}
	}
	return dirs
}

// ---- type/call resolution helpers shared by the analyzers ----

// calleeFunc resolves the static callee of call, following identifiers and
// selector expressions to the *types.Func. Returns nil for indirect calls
// (function values), built-ins, and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isPkgFunc reports whether call statically invokes a function named name
// from the package whose import path is pkgpath.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgpath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgpath && fn.Name() == name
}

// pkgFuncName returns "path.Name" for the static callee, or "" if indirect.
func pkgFuncName(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// containsIdentOf reports whether expr mentions an identifier resolving to obj.
func containsIdentOf(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// isResourceExpr reports whether expr evaluates to the resource value itself
// — the bare identifier, possibly parenthesized or resliced. An expression
// that merely mentions the resource (an element read like buf[0], a call
// borrowing it) is NOT the resource: returning such a value does not
// transfer ownership, so the release obligation stands.
func isResourceExpr(info *types.Info, expr ast.Expr, obj types.Object) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return info.Uses[e] == obj
		case *ast.SliceExpr:
			expr = e.X
		default:
			return false
		}
	}
}

// forEachFuncBody invokes fn for every function body in the package: declared
// functions and methods (with their FuncDecl) and every function literal
// (with the enclosing declaration, for directive lookup).
func forEachFuncBody(pkg *Package, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn(fd, fd.Body)
		}
	}
}
