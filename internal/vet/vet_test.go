package vet_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"dmml/internal/vet"
)

// The module is loaded once per test binary: type-checking the whole tree
// (plus the stdlib, from source) dominates the cost of every test here.
var (
	modOnce sync.Once
	mod     *vet.Module
	modErr  error
)

func loadModule(t *testing.T) *vet.Module {
	t.Helper()
	modOnce.Do(func() { mod, modErr = vet.Load(".") })
	if modErr != nil {
		t.Fatalf("loading module: %v", modErr)
	}
	return mod
}

// expectation is one `// want `...`` comment in a testdata file.
type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantRe = regexp.MustCompile("// want `([^`]+)`")

// parseExpectations scans the non-test Go files of dir for want comments.
func parseExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	var out []*expectation
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("reading %s: %v", name, err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, m[1], err)
			}
			out = append(out, &expectation{file: name, line: i + 1, re: re, raw: m[1]})
		}
	}
	if len(out) == 0 {
		t.Fatalf("no want expectations found in %s", dir)
	}
	return out
}

// TestGoldenAnalyzers runs each analyzer over its seeded testdata package and
// matches the findings against the `// want` expectations: every expectation
// must be hit (the analyzer demonstrably catches the seeded bug) and every
// finding must be expected (the guards demonstrate zero false positives).
func TestGoldenAnalyzers(t *testing.T) {
	m := loadModule(t)
	for _, a := range vet.Analyzers {
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", a.Name)
			// The package path is deliberately outside the module namespace:
			// analyzers that scope per-package behavior (lockdiscipline's
			// pairing proof) treat out-of-module testdata as in scope.
			pkg, err := vet.LoadTestPackage(m, dir, a.Name)
			if err != nil {
				t.Fatalf("loading testdata: %v", err)
			}
			expects := parseExpectations(t, dir)
			findings := vet.Run(m, []*vet.Package{pkg}, []*vet.Analyzer{a})
			for _, f := range findings {
				base := filepath.Base(f.Pos.Filename)
				matched := false
				for _, e := range expects {
					if !e.hit && e.file == base && e.line == f.Pos.Line && e.re.MatchString(f.Message) {
						e.hit = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for _, e := range expects {
				if !e.hit {
					t.Errorf("%s:%d: expected finding matching `%s`, got none", e.file, e.line, e.raw)
				}
			}
		})
	}
}

// TestEngineTreeClean proves the invariant the CI gate relies on: the full
// analyzer suite over the annotated engine tree reports nothing.
func TestEngineTreeClean(t *testing.T) {
	m := loadModule(t)
	var pkgs []*vet.Package
	for _, p := range m.Pkgs {
		pkgs = append(pkgs, p)
	}
	for _, f := range vet.Run(m, pkgs, vet.Analyzers) {
		t.Errorf("engine tree finding: %s", f)
	}
}

// TestAnalyzerMetadata keeps the suite's registry well-formed: unique names
// (they key -only selection and testdata layout) and non-empty docs.
func TestAnalyzerMetadata(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range vet.Analyzers {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v: incomplete metadata", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
