package vet

// lockdiscipline enforces two locking invariants:
//
//  1. Everywhere: values whose type (transitively) contains a sync.Mutex or
//     sync.RWMutex must not be copied — not passed by value, returned by
//     value, assigned from an existing value, bound as a by-value range
//     variable, or used as a by-value method receiver. A copied mutex is an
//     independent lock guarding shared state: the classic silent race.
//
//  2. In the engine's concurrency-critical packages (pool, paramserver,
//     storage): every mu.Lock()/mu.RLock() must reach the matching
//     mu.Unlock()/mu.RUnlock() on all exit paths of the function, via defer
//     or per-path release — the same path proof as scratchpair, applied to
//     critical sections. (Scoped to those packages because elsewhere a
//     suite-level proof adds little over the race detector, and helper
//     wrappers would need annotations.)

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var AnalyzerLockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "no mutex copied by value; Lock/Unlock balanced on all paths in pool/paramserver/storage",
	Run:  runLockDiscipline,
}

// lockPairPkgs are the module packages whose critical sections get the
// all-paths Lock/Unlock proof.
var lockPairPkgs = map[string]bool{
	"dmml/internal/pool":        true,
	"dmml/internal/paramserver": true,
	"dmml/internal/storage":     true,
}

func runLockDiscipline(pass *Pass) {
	checkLockCopies(pass)
	if lockPairPkgs[pass.Types.Path()] || !strings.HasPrefix(pass.Types.Path(), "dmml/") {
		checkLockPairs(pass)
	}
}

// ---- part 1: mutex copied by value ----

// containsLock reports whether t held by value embeds a sync.Mutex/RWMutex.
func containsLock(t types.Type) bool {
	return containsLockRec(t, make(map[types.Type]bool))
}

func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(u.Elem(), seen)
	}
	if named, ok := t.(*types.Named); ok {
		return containsLockRec(named.Underlying(), seen)
	}
	return false
}

// copiesExistingValue reports whether e denotes an existing addressable
// value whose evaluation copies it (ident, selector, index, deref) — as
// opposed to a fresh composite literal or conversion, which is
// initialization, not a copy of a possibly-locked lock.
func copiesExistingValue(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

func lockTypeName(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

func checkLockCopies(pass *Pass) {
	exprCopiesLock := func(e ast.Expr) (types.Type, bool) {
		if !copiesExistingValue(e) {
			return nil, false
		}
		tv, ok := pass.Info.Types[e]
		if !ok || tv.Type == nil {
			return nil, false
		}
		if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
			return nil, false
		}
		if containsLock(tv.Type) {
			return tv.Type, true
		}
		return nil, false
	}

	for _, f := range pass.Files {
		// By-value receivers and parameters on declared functions.
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Recv != nil {
				for _, field := range fd.Recv.List {
					if tv, ok := pass.Info.Types[field.Type]; ok && tv.Type != nil {
						if _, isPtr := tv.Type.Underlying().(*types.Pointer); !isPtr && containsLock(tv.Type) {
							pass.Reportf(field.Pos(), "method %s has a by-value receiver of type %s, which contains a mutex; use a pointer receiver", fd.Name.Name, lockTypeName(tv.Type))
						}
					}
				}
			}
			if fd.Type.Params != nil {
				for _, field := range fd.Type.Params.List {
					if tv, ok := pass.Info.Types[field.Type]; ok && tv.Type != nil {
						if _, isPtr := tv.Type.Underlying().(*types.Pointer); !isPtr && containsLock(tv.Type) {
							pass.Reportf(field.Pos(), "function %s takes %s by value, copying its mutex; pass a pointer", fd.Name.Name, lockTypeName(tv.Type))
						}
					}
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, r := range n.Rhs {
					if t, bad := exprCopiesLock(r); bad {
						pass.Reportf(r.Pos(), "assignment copies a value of type %s, which contains a mutex", lockTypeName(t))
					}
				}
			case *ast.CallExpr:
				for _, a := range n.Args {
					if t, bad := exprCopiesLock(a); bad {
						pass.Reportf(a.Pos(), "call passes a value of type %s by value, copying its mutex", lockTypeName(t))
					}
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if t, bad := exprCopiesLock(r); bad {
						pass.Reportf(r.Pos(), "return copies a value of type %s, which contains a mutex", lockTypeName(t))
					}
				}
			case *ast.RangeStmt:
				// A `:=` range value is a definition, recorded in Defs rather
				// than Types; resolve through either.
				if n.Value != nil {
					var t types.Type
					if tv, ok := pass.Info.Types[n.Value]; ok {
						t = tv.Type
					} else if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok {
						if obj := pass.Info.Defs[id]; obj != nil {
							t = obj.Type()
						} else if obj := pass.Info.Uses[id]; obj != nil {
							t = obj.Type()
						}
					}
					if t != nil && containsLock(t) {
						pass.Reportf(n.Value.Pos(), "range value copies %s, which contains a mutex; range over indices or pointers", lockTypeName(t))
					}
				}
			}
			return true
		})
	}
}

// ---- part 2: Lock/Unlock pairing ----

// lockCall matches mu.Lock/RLock/Unlock/RUnlock calls on sync mutexes and
// returns the receiver key ("fl.mu") plus whether it is the reader variant.
func lockCall(pass *Pass, call *ast.CallExpr, names ...string) (key string, ok bool) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	match := false
	for _, n := range names {
		if fn.Name() == n {
			match = true
		}
	}
	if !match {
		return "", false
	}
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", false
	}
	return types.ExprString(sel.X), true
}

func checkLockPairs(pass *Pass) {
	forEachFuncContext(pass.Package, func(fc funcContext) {
		// Collect every Lock/RLock acquisition statement in this context.
		type acq struct {
			stmt ast.Stmt
			call *ast.CallExpr
			key  string
			read bool
		}
		var acqs []acq
		inspectContext(fc.body, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(es.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, ok := lockCall(pass, call, "Lock"); ok {
				acqs = append(acqs, acq{stmt: es, call: call, key: key})
			} else if key, ok := lockCall(pass, call, "RLock"); ok {
				acqs = append(acqs, acq{stmt: es, call: call, key: key, read: true})
			}
			return true
		})
		for _, a := range acqs {
			unlock := "Unlock"
			if a.read {
				unlock = "RUnlock"
			}
			t := &pairTracker{
				acquireStmt: a.stmt,
				isRelease: func(call *ast.CallExpr) bool {
					key, ok := lockCall(pass, call, unlock)
					return ok && key == a.key
				},
				leak: func(pos token.Pos, where string) {
					pass.Reportf(pos, "%s is still locked at %s (%s at %s has no matching %s.%s on this path)",
						a.key, where, lockName(a.read), pass.Fset.Position(a.call.Pos()), a.key, unlock)
				},
			}
			t.check(fc.body)
		}
	})
}

func lockName(read bool) string {
	if read {
		return "RLock"
	}
	return "Lock"
}
