// Package spanpair is the golden diagnostic package for the spanpair
// analyzer: seeded unpaired spans/stopwatches, and the paired forms that
// must stay silent.
package spanpair

import (
	"context"

	"dmml/internal/metrics"
)

var opTimer = metrics.NewTimer("vet.spanpair.op")

func work(ctx context.Context) int {
	_ = ctx
	return 1
}

// Seeded bug: the early return skips end().
func spanLeakOnEarlyReturn(ctx context.Context, n int) int {
	sctx, end := metrics.Span(ctx, "vet.op")
	if n > 3 {
		return 0 // want `metrics span end "end" is not called on return`
	}
	v := work(sctx)
	end()
	return v
}

// Seeded bug: span opened, never ended.
func spanLeakAtEnd(ctx context.Context) int {
	sctx, end := metrics.Span(ctx, "vet.op")
	_ = end
	return work(sctx) // want `metrics span end "end" is not called on return`
}

// Seeded bug: the end func is dropped on the floor.
func spanEndDiscarded(ctx context.Context) {
	_, _ = metrics.Span(ctx, "vet.op") // want `span end function is discarded`
}

// Seeded bug: stopwatch never stopped on the error path.
func stopwatchLeak(n int) int {
	sw := opTimer.Start()
	if n < 0 {
		return -1 // want `stopwatch "sw" is not stopped on return`
	}
	sw.Stop()
	return n
}

// Seeded bug: stopwatch dropped at acquisition.
func stopwatchDiscarded() {
	opTimer.Start() // want `stopwatch from Timer.Start is discarded`
}

// ---- false-positive guards ----

// Guard: defer end() covers every path.
func spanDeferred(ctx context.Context, n int) int {
	sctx, end := metrics.Span(ctx, "vet.op")
	defer end()
	if n > 3 {
		return 0
	}
	return work(sctx)
}

// Guard: end() called inside a deferred closure (the eval.go shape).
func spanDeferredClosure(ctx context.Context) int {
	sctx, end := metrics.Span(ctx, "vet.op")
	defer func() {
		end()
	}()
	return work(sctx)
}

// Guard: explicit end on each path.
func spanBranched(ctx context.Context, n int) int {
	sctx, end := metrics.Span(ctx, "vet.op")
	if n > 3 {
		end()
		return 0
	}
	v := work(sctx)
	end()
	return v
}

// Guard: defer sw.Stop() covers every path.
func stopwatchDeferred(n int) int {
	sw := opTimer.Start()
	defer sw.Stop()
	if n < 0 {
		return -1
	}
	return n
}

// Guard: per-iteration start/stop is balanced (the SGD epoch shape).
func stopwatchPerEpoch(epochs int) {
	for e := 0; e < epochs; e++ {
		sw := opTimer.Start()
		work(context.Background())
		sw.Stop()
	}
}

// Guard: a stopwatch handed to the caller is an ownership transfer the
// analyzer does not second-guess.
func stopwatchHandOff() metrics.Stopwatch {
	sw := opTimer.Start()
	return sw
}
