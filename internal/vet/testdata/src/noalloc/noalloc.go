// Package noalloc is the golden diagnostic package for the noalloc
// analyzer: every allocating construct seeded in a //dmml:noalloc flow,
// plus the allowed idioms (pool scratch, metrics by fiat, math, capacity
// reuse, constant folding) that must stay silent.
package noalloc

import (
	"fmt"
	"math"
	"strconv"

	"dmml/internal/metrics"
	"dmml/internal/pool"
)

// ---- seeded allocating constructs ----

//dmml:noalloc
func usesMake(n int) float64 {
	buf := make([]float64, n) // want `make in //dmml:noalloc flow of usesMake`
	return buf[0]
}

//dmml:noalloc
func usesNew() *int {
	return new(int) // want `new in //dmml:noalloc flow of usesNew`
}

//dmml:noalloc
func sliceLit() []int {
	return []int{1, 2, 3} // want `slice literal in //dmml:noalloc flow of sliceLit`
}

//dmml:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation in //dmml:noalloc flow of concat`
}

//dmml:noalloc
func capture(n int) func() int {
	return func() int { return n } // want `closure captures variable "n" \(heap-allocates the closure\) in //dmml:noalloc flow of capture`
}

//dmml:noalloc
func growAppend(s []float64, v float64) []float64 {
	return append(s, v) // want `append \(may grow the backing array\) in //dmml:noalloc flow of growAppend`
}

//dmml:noalloc
func mapWrite(m map[string]int, k string) {
	m[k] = 1 // want `map write \(may grow the map\) in //dmml:noalloc flow of mapWrite`
}

//dmml:noalloc
func boxValue(v float64) {
	var sink interface{}
	sink = v // want `interface boxing of non-pointer value \(float64`
	_ = sink
}

//dmml:noalloc
func toBytes(s string) int {
	b := []byte(s) // want `string <-> slice conversion in //dmml:noalloc flow of toBytes`
	return len(b)
}

//dmml:noalloc
func dynamic(f func() int) int {
	return f() // want `dynamic call through a function value \(cannot be proven allocation-free\) in //dmml:noalloc flow of dynamic`
}

func spin() {}

//dmml:noalloc
func spawns() {
	go spin() // want `go statement \(spawns a goroutine\) in //dmml:noalloc flow of spawns`
}

func variadicFn(vs ...int) int {
	t := 0
	for _, v := range vs {
		t += v
	}
	return t
}

//dmml:noalloc
func callsVariadic() int {
	return variadicFn(1, 2) // want `variadic call to variadicFn materializes its argument slice in //dmml:noalloc flow of callsVariadic`
}

// helperAllocates is NOT annotated: the transitive audit must find the make
// inside it and summarize at the annotated caller's call site.
func helperAllocates(n int) []float64 {
	return make([]float64, n)
}

//dmml:noalloc
func callsDirty(n int) float64 {
	return helperAllocates(n)[0] // want `calls helperAllocates, which allocates: make at .* in //dmml:noalloc flow of callsDirty`
}

//dmml:noalloc
func outside(n int) string {
	return strconv.Itoa(n) // want `call to strconv.Itoa, outside the audited set \(not provably allocation-free\) in //dmml:noalloc flow of outside`
}

// ---- false-positive guards: every one of these must stay silent ----

//dmml:noalloc
func cleanKernel(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s)
}

// Guard: the scratch-pool API is allowed by fiat.
//
//dmml:noalloc
func usesScratch(n int) float64 {
	buf := pool.GetF64Zeroed(n)
	s := buf[0]
	pool.PutF64(buf)
	return s
}

func helperClean(x float64) float64 {
	return x * 2
}

// Guard: unannotated module-internal callees are audited transitively and
// stay silent when clean.
//
//dmml:noalloc
func callsCleanHelper(x float64) float64 {
	return helperClean(x)
}

// Guard: an annotated callee is audited at its own declaration, not again
// at the call site.
//
//dmml:noalloc
func callsAnnotated(n int) float64 {
	return usesScratch(n)
}

// Guard: append onto an explicit reslice reuses capacity.
//
//dmml:noalloc
func reuseAppend(s []float64, v float64) []float64 {
	return append(s[:0], v)
}

// Guard: constant concatenation folds at compile time.
//
//dmml:noalloc
func constConcat() string {
	const name = "vet." + "noalloc"
	return name
}

// Guard: allocations feeding a panic are off the steady-state path — the
// engine's fmt.Sprintf length-check panics stay legal in annotated kernels.
//
//dmml:noalloc
func panicPath(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("noalloc: bad n %d", n))
	}
	return n * 2
}

var kernelCounter = metrics.NewCounter("vet.noalloc.kernel")

// Guard: metrics instruments are engineered zero-alloc and allowed by fiat.
//
//dmml:noalloc
func instrumented(x float64) float64 {
	kernelCounter.Inc()
	return x + 1
}

// ---- compiled-kernel discipline: closures must not capture per-call state ----

// kernelCtx mimics the compiled fusion backend's per-call context: inputs
// travel through a pooled struct, never through closure captures.
type kernelCtx struct{ xs []float64 }

// Guard: the clean compiled-kernel pattern. The constructor runs once at
// compile time, so it is deliberately NOT annotated (the closure it builds
// may allocate there); the closure captures only the compile-time constant
// scale and reads all per-call state from ctx, so annotated callers of the
// built kernel stay allocation-free.
func buildScaleKernel(scale float64) func(*kernelCtx, int) float64 {
	return func(c *kernelCtx, i int) float64 { return c.xs[i] * scale }
}

var _ = buildScaleKernel

// Seeded violation: a kernel that closes over its per-call argument
// heap-allocates a fresh closure on every invocation — the exact bug the
// compiled backend's zero-alloc contract forbids.
//
//dmml:noalloc
func capturesPerCallState(xs []float64) func(int) float64 {
	return func(i int) float64 { return xs[i] } // want `closure captures variable "xs" \(heap-allocates the closure\) in //dmml:noalloc flow of capturesPerCallState`
}
