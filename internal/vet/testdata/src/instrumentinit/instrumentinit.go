// Package instrumentinit is the golden diagnostic package for the
// instrumentinit analyzer: instrument constructors anywhere but a
// package-level var or init() are reported.
package instrumentinit

import "dmml/internal/metrics"

// Guard: package-level var initializers are the blessed form.
var (
	goodCounter = metrics.NewCounter("vet.ii.good")
	goodTimer   = metrics.NewTimer("vet.ii.timer")
)

// Guard: init() is registration time.
func init() {
	metrics.NewGauge("vet.ii.boot").Set(1)
}

// Seeded bug: registration on a request path.
func perCallCounter() {
	c := metrics.NewCounter("vet.ii.percall") // want `metrics.NewCounter called inside function perCallCounter`
	c.Inc()
}

// Seeded bug: dynamic names grow the registry without bound.
func perCallDynamic(name string) {
	metrics.NewHistogram("vet.ii." + name).Observe(1) // want `metrics.NewHistogram called inside function perCallDynamic`
}

// Seeded bug: a function literal in a package-level var still runs per call.
var lazyTimer = func() *metrics.Timer {
	return metrics.NewTimer("vet.ii.lazy") // want `metrics.NewTimer called inside a function literal`
}

// Seeded bug: methods are functions too.
type widget struct{}

func (widget) observe() {
	metrics.NewTimer("vet.ii.widget").Start().Stop() // want `metrics.NewTimer called inside function observe`
}

// Guard: using already-registered instruments anywhere is fine.
func useInstruments() {
	goodCounter.Inc()
	sw := goodTimer.Start()
	sw.Stop()
	_ = lazyTimer
}

var _ = widget{}
