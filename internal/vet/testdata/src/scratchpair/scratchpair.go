// Package scratchpair is the golden diagnostic package for the scratchpair
// analyzer: seeded leaks that must be reported, and every sanctioned idiom
// from the engine tree that must NOT be (defer release, branch release,
// swap, view binding, slot transfer, //dmml:owns-scratch).
package scratchpair

import "dmml/internal/pool"

// Seeded bug: classic early-return leak — the error path drops the buffer.
func leakOnEarlyReturn(n int) float64 {
	buf := pool.GetF64(n)
	if n > 4 {
		return 0 // want `scratch buffer "buf" .* is not released on return`
	}
	s := buf[0]
	pool.PutF64(buf)
	return s
}

// Seeded bug: no release at all.
func leakAtEnd(n int) {
	buf := pool.GetF64Zeroed(n)
	buf[0] = 1
} // want `scratch buffer "buf" .* is not released on function end`

// Seeded bug: acquired and immediately dropped.
func discarded(n int) {
	pool.GetF64(n) // want `scratch buffer from pool.GetF64 is discarded`
}

// Seeded bug: one switch arm leaks.
func leakInSwitchArm(n int) float64 {
	buf := pool.GetF64(n)
	switch {
	case n > 10:
		pool.PutF64(buf)
		return 0
	case n > 5:
		return 1 // want `scratch buffer "buf" .* is not released on return`
	}
	s := buf[0]
	pool.PutF64(buf)
	return s
}

// Seeded bug: acquired fresh every iteration, never released.
func leakPerIteration(n, iters int) float64 {
	var s float64
	for i := 0; i < iters; i++ {
		buf := pool.GetF64(n)
		s += buf[0]
	} // want `scratch buffer "buf" .* is not released on loop iteration`
	return s
}

// Seeded bug: the buffer escapes into a package-level variable without an
// ownership annotation.
var parked []float64

func leakByEscape(n int) {
	buf := pool.GetF64(n) // want `scratch buffer "buf" escapes \(assigned to parked\)`
	parked = buf
}

// Seeded bug: returned to the caller without //dmml:owns-scratch.
func leakByReturn(n int) []float64 {
	buf := pool.GetF64(n) // want `scratch buffer "buf" escapes \(returned to the caller\)`
	return buf
}

// Seeded bug: the early return reads an element of the buffer — a borrow,
// not an ownership transfer — so the leak must still fire. (Regression pin:
// a return merely *mentioning* the buffer used to suppress the proof.)
func leakOnElementReturn(n int) float64 {
	buf := pool.GetF64(n)
	if n > 4 {
		return buf[0] // want `scratch buffer "buf" .* is not released on return`
	}
	pool.PutF64(buf)
	return 0
}

// ---- false-positive guards: every one of these must stay silent ----

// Guard: defer pairs on every path.
func deferRelease(n int) float64 {
	buf := pool.GetF64(n)
	defer pool.PutF64(buf)
	if n > 4 {
		return 0
	}
	return buf[0]
}

// Guard: explicit release dominating each return (the pool.GetF64 shape).
func branchRelease(n int) float64 {
	buf := pool.GetF64(n)
	if n > 4 {
		pool.PutF64(buf)
		return 0
	}
	s := buf[0]
	pool.PutF64(buf)
	return s
}

// Guard: the GD swap idiom — names permute, defers release the originals.
func swapRelease(n int) {
	a := pool.GetF64(n)
	defer pool.PutF64(a)
	b := pool.GetF64(n)
	defer pool.PutF64(b)
	a[0], b[0] = 1, 2
	a, b = b, a
	a[0]++
	b[0]++
}

// Guard: a local view over the buffer is not an ownership transfer.
func viewBinding(n int) float64 {
	buf := pool.GetF64(n)
	head := buf[:n/2]
	s := head[0]
	pool.PutF64(buf)
	return s
}

// Guard: element reads are values, not aliases.
func elementRead(n int) float64 {
	buf := pool.GetF64Zeroed(n)
	var s float64
	for i := 0; i < n; i += 2 {
		s += buf[i]
	}
	pool.PutF64(buf)
	return s
}

// Guard: the per-worker slot-transfer idiom — a closure parks its scratch in
// a local partials slice; the enclosing merge loop releases every slot.
func slotTransfer(n, workers int) float64 {
	partials := make([][]float64, workers)
	run := func(slot int) {
		acc := partials[slot]
		if acc == nil {
			acc = pool.GetF64Zeroed(n)
			partials[slot] = acc
		}
		acc[0]++
	}
	for w := 0; w < workers; w++ {
		run(w)
	}
	var s float64
	for _, p := range partials {
		if p != nil {
			s += p[0]
			pool.PutF64(p)
		}
	}
	return s
}

// Guard: annotated ownership transfer — the caller releases.
//
//dmml:owns-scratch
func ownsScratch(n int) []float64 {
	out := pool.GetF64(n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

// Guard: acquire+release both inside the loop body is balanced.
func perIterationBalanced(n, iters int) float64 {
	var s float64
	for i := 0; i < iters; i++ {
		buf := pool.GetF64(n)
		s += buf[0]
		pool.PutF64(buf)
	}
	return s
}

// Guard: release inside a deferred closure counts.
func deferClosureRelease(n int) float64 {
	buf := pool.GetF64(n)
	defer func() {
		pool.PutF64(buf)
	}()
	return buf[0]
}
