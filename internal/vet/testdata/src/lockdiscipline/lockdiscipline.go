// Package lockdiscipline is the golden diagnostic package for the
// lockdiscipline analyzer: mutexes copied by value (flagged everywhere) and
// unbalanced Lock/Unlock paths (flagged because this package path is outside
// the module, standing in for pool/paramserver/storage).
package lockdiscipline

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

type rwGuarded struct {
	mu sync.RWMutex
	n  int
}

// ---- seeded Lock/Unlock pairing bugs ----

// Seeded bug: the error path returns with the lock held.
func lockLeakEarlyReturn(g *guarded, v int) int {
	g.mu.Lock()
	if v < 0 {
		return -1 // want `g\.mu is still locked at return`
	}
	g.n += v
	g.mu.Unlock()
	return g.n
}

// Seeded bug: locked, never unlocked.
func lockLeakAtEnd(g *guarded) {
	g.mu.Lock()
	g.n++
} // want `g\.mu is still locked at function end`

// Seeded bug: the reader lock leaks on the miss path.
func rlockLeak(g *rwGuarded, ok bool) int {
	g.mu.RLock()
	if !ok {
		return 0 // want `g\.mu is still locked at return`
	}
	v := g.n
	g.mu.RUnlock()
	return v
}

// ---- seeded mutex-copy bugs ----

// Seeded bug: a by-value parameter copies the mutex.
func copyParam(g guarded) int { // want `function copyParam takes lockdiscipline\.guarded by value`
	return g.n
}

// Seeded bug: a by-value receiver copies the mutex on every call.
func (g guarded) byValue() int { // want `method byValue has a by-value receiver of type lockdiscipline\.guarded`
	return g.n
}

// Seeded bug: dereferencing assignment copies the lock state.
func snapshot(g *guarded) int {
	s := *g // want `assignment copies a value of type lockdiscipline\.guarded`
	return s.n
}

// Seeded bug: returning the struct by value copies it.
func returnCopy(g *guarded) guarded {
	return *g // want `return copies a value of type lockdiscipline\.guarded`
}

// Seeded bug: passing by value copies it.
func passCopy(g *guarded) int {
	return copyParam(*g) // want `call passes a value of type lockdiscipline\.guarded by value`
}

// Seeded bug: a by-value range variable copies each element's mutex.
func rangeCopy(gs []guarded) int {
	t := 0
	for _, it := range gs { // want `range value copies lockdiscipline\.guarded`
		t += it.n
	}
	return t
}

// ---- false-positive guards: every one of these must stay silent ----

// Guard: defer unlock covers every path.
func properDefer(g *guarded, v int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if v < 0 {
		return -1
	}
	g.n += v
	return g.n
}

// Guard: per-path unlock.
func properBranch(g *guarded, v int) int {
	g.mu.Lock()
	if v < 0 {
		g.mu.Unlock()
		return -1
	}
	g.n += v
	g.mu.Unlock()
	return g.n
}

// Guard: reader lock with defer.
func properRead(g *rwGuarded) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.n
}

// Guard: pointers and index expressions do not copy the element.
func pointerUse(gs []guarded) int {
	t := 0
	for i := range gs {
		g := &gs[i]
		g.mu.Lock()
		t += g.n
		g.mu.Unlock()
	}
	return t
}

// Guard: composite-literal initialization is not a copy of a live lock.
func fresh() *guarded {
	g := guarded{n: 1}
	return &g
}
