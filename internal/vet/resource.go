package vet

// Shared resource-binding and escape analysis for scratchpair and spanpair.
// An "acquire" is a call returning an owned resource (a pooled buffer, a
// span-end function, a running stopwatch). The binding scanner finds the
// statement forms acquires appear in; the escape scanner classifies every
// use of the bound variable as borrow (indexing, slicing, call argument),
// sanctioned transfer (the slot-store idiom, see below), or escape (alias,
// store, return, send) — only resources that never escape go through the
// all-paths release proof in paths.go.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// acquireBinding is one acquisition site within a function context.
type acquireBinding struct {
	stmt ast.Stmt      // statement performing the acquire (nil when naked)
	call *ast.CallExpr // the acquire call itself
	obj  types.Object  // variable bound to the resource; nil if not bound
	// discarded: the result was dropped (blank identifier or bare call).
	discarded bool
	// storedAtBirth: the result was assigned to a non-identifier lvalue
	// (field, index, global) in the acquiring statement itself.
	storedAtBirth bool
	// naked: the call appears nested inside another expression (a return
	// value, a call argument) with no local binding at all.
	naked bool
}

// findAcquires scans one function context (not descending into nested
// function literals) for acquisitions. isAcquire matches the call;
// resultIndex says which assignment slot binds the owned resource (0 for
// pool.GetF64's buffer, 1 for metrics.Span's end func).
func findAcquires(pass *Pass, body *ast.BlockStmt, isAcquire func(*ast.CallExpr) bool, resultIndex int) []acquireBinding {
	var out []acquireBinding
	consumed := make(map[*ast.CallExpr]bool)

	bindLHS := func(stmt ast.Stmt, call *ast.CallExpr, lhs ast.Expr, define bool) {
		b := acquireBinding{stmt: stmt, call: call}
		switch l := lhs.(type) {
		case *ast.Ident:
			if l.Name == "_" {
				b.discarded = true
			} else if define {
				b.obj = pass.Info.Defs[l]
			} else {
				b.obj = pass.Info.Uses[l]
			}
		default:
			b.storedAtBirth = true
		}
		out = append(out, b)
	}

	inspectContext(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			define := s.Tok == token.DEFINE
			if len(s.Rhs) == 1 {
				if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok && isAcquire(call) {
					consumed[call] = true
					if resultIndex < len(s.Lhs) {
						bindLHS(s, call, s.Lhs[resultIndex], define)
					} else {
						out = append(out, acquireBinding{stmt: s, call: call, discarded: true})
					}
					return true
				}
			}
			if len(s.Rhs) == len(s.Lhs) {
				for i, r := range s.Rhs {
					if call, ok := ast.Unparen(r).(*ast.CallExpr); ok && isAcquire(call) && resultIndex == 0 {
						consumed[call] = true
						bindLHS(s, call, s.Lhs[i], define)
					}
				}
			}
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 1 {
					continue
				}
				call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr)
				if !ok || !isAcquire(call) {
					continue
				}
				consumed[call] = true
				if resultIndex < len(vs.Names) {
					name := vs.Names[resultIndex]
					b := acquireBinding{stmt: s, call: call}
					if name.Name == "_" {
						b.discarded = true
					} else {
						b.obj = pass.Info.Defs[name]
					}
					out = append(out, b)
				}
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isAcquire(call) {
				consumed[call] = true
				out = append(out, acquireBinding{stmt: s, call: call, discarded: true})
			}
		}
		return true
	})

	// Second pass: acquire calls nested inside larger expressions.
	inspectContext(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isAcquire(call) && !consumed[call] {
			out = append(out, acquireBinding{call: call, naked: true})
		}
		return true
	})
	return out
}

// escapeResult classifies how a bound resource leaves its function context.
type escapeResult struct {
	node ast.Node
	desc string
	// sanctioned: the slot-transfer idiom — the buffer is parked in an
	// element of a slice that is itself a local variable, and the enclosing
	// declaration contains a matching release call, so ownership moved to
	// the enclosing merge loop (per-worker partials merged and PutF64'd
	// after pool.Do returns).
	sanctioned bool
}

// findEscape scans every use of obj in the context (including nested
// function literals — a closure can store its capture) and returns the
// first ownership-leaving use, or nil. declBody is the body of the
// enclosing declared function, used by the slot-transfer rule.
// releaseAnywhere reports whether a node contains a release call for ANY
// resource of this analyzer's kind (used to sanction slot transfers).
func findEscape(pass *Pass, body *ast.BlockStmt, obj types.Object, acquire *ast.CallExpr,
	declBody *ast.BlockStmt, releaseAnywhere func(ast.Node) bool) *escapeResult {

	parents := buildParents(body)
	var esc *escapeResult
	ast.Inspect(body, func(n ast.Node) bool {
		if esc != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.Info.Uses[id] != obj {
			return true
		}
		if r := classifyUse(pass, id, parents, obj, acquire, declBody, releaseAnywhere); r != nil {
			esc = r
			return false
		}
		return true
	})
	return esc
}

// classifyUse climbs from one identifier use to its enclosing statement,
// deciding whether the use lets the resource escape.
func classifyUse(pass *Pass, id *ast.Ident, parents map[ast.Node]ast.Node, obj types.Object,
	acquire *ast.CallExpr, declBody *ast.BlockStmt, releaseAnywhere func(ast.Node) bool) *escapeResult {

	insideCallArgs := false
	var prev ast.Node = id
	for n := parents[id]; n != nil; n = parents[n] {
		switch p := n.(type) {
		case *ast.CallExpr:
			if p == acquire {
				return nil // the acquiring call itself
			}
			if prev != p.Fun {
				// Passed as an argument: a borrow. The callee may release it
				// (the release matcher sees through this) but is assumed not
				// to retain it.
				insideCallArgs = true
			}
		case *ast.IndexExpr:
			if prev == p.X {
				// Element access: the resulting value is an element of the
				// buffer, not the buffer — no alias can form from it.
				return nil
			}
		case *ast.CompositeLit:
			return &escapeResult{node: id, desc: "stored in a composite literal"}
		case *ast.UnaryExpr:
			if p.Op == token.AND && prev == id {
				return &escapeResult{node: id, desc: "has its address taken"}
			}
		case *ast.AssignStmt:
			onLHS := false
			for _, l := range p.Lhs {
				if containsNode(l, prev) {
					onLHS = true
				}
			}
			if onLHS {
				return nil // writing the variable itself (rebind, reslice)
			}
			if insideCallArgs {
				return nil
			}
			// The resource value flows into another lvalue: find which one.
			// Same-length assignments pair positionally; otherwise be
			// conservative and treat any non-obj LHS mentioning as escape.
			if lhsMentions(pass, p, obj) {
				return nil // swap idiom: w, cand = cand, w
			}
			if lv, rv := pairedSides(p, prev); lv != nil {
				if isViewBinding(pass, id, rv, lv) {
					// bp := buf[a:b] — a local view over the buffer. The
					// release obligation on the original binding stands, so
					// this is not an ownership transfer. (The view itself is
					// not tracked further: documented conservatism.)
					return nil
				}
				if isLocalSlotStore(pass, lv) && declBody != nil && releaseAnywhere(declBody) {
					return &escapeResult{node: id, desc: "", sanctioned: true}
				}
				return &escapeResult{node: id, desc: "assigned to " + types.ExprString(lv)}
			}
			return &escapeResult{node: id, desc: "aliased by assignment"}
		case *ast.ValueSpec:
			if insideCallArgs {
				return nil
			}
			return &escapeResult{node: id, desc: "aliased by declaration"}
		case *ast.ReturnStmt:
			if insideCallArgs {
				return nil
			}
			return &escapeResult{node: id, desc: "returned to the caller"}
		case *ast.SendStmt:
			if insideCallArgs || prev == p.Chan {
				return nil
			}
			return &escapeResult{node: id, desc: "sent on a channel"}
		case ast.Stmt:
			return nil // any other statement: plain use
		}
		prev = n
	}
	return nil
}

// pairedSides returns the LHS/RHS pair positionally matching the RHS
// expression containing the use, or nils when the pairing is ambiguous.
func pairedSides(a *ast.AssignStmt, within ast.Node) (lhs, rhs ast.Expr) {
	if len(a.Lhs) != len(a.Rhs) {
		return nil, nil
	}
	for i, r := range a.Rhs {
		if containsNode(r, within) {
			return a.Lhs[i], r
		}
	}
	return nil, nil
}

// isViewBinding reports whether rv is a pure slice-expression view over the
// used identifier (buf[a:b], possibly chained) bound to a function-local
// identifier.
func isViewBinding(pass *Pass, id *ast.Ident, rv, lv ast.Expr) bool {
	lid, ok := ast.Unparen(lv).(*ast.Ident)
	if !ok {
		return false
	}
	var lobj types.Object
	if lid.Name == "_" {
		lobj = nil
	} else if o := pass.Info.Defs[lid]; o != nil {
		lobj = o
	} else {
		lobj = pass.Info.Uses[lid]
	}
	if v, isVar := lobj.(*types.Var); isVar && (v.IsField() || v.Parent() == pass.Types.Scope()) {
		return false // view parked in a field or package-level var: escape
	}
	e := ast.Unparen(rv)
	for {
		se, ok := e.(*ast.SliceExpr)
		if !ok {
			break
		}
		e = ast.Unparen(se.X)
	}
	return e == id
}

// isLocalSlotStore reports whether lv is an index into a slice held by a
// local (non-field, non-package-level) variable — the per-worker partials
// idiom.
func isLocalSlotStore(pass *Pass, lv ast.Expr) bool {
	ix, ok := ast.Unparen(lv).(*ast.IndexExpr)
	if !ok {
		return false
	}
	base, ok := ast.Unparen(ix.X).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := pass.Info.Uses[base].(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	// Package-level slices are long-lived stores, not transfers.
	return v.Parent() != pass.Types.Scope()
}

func lhsMentions(pass *Pass, a *ast.AssignStmt, obj types.Object) bool {
	for _, l := range a.Lhs {
		if containsIdentOf(pass.Info, l, obj) {
			return true
		}
	}
	return false
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if n == target {
			found = true
			return false
		}
		return true
	})
	return found
}

// buildParents maps every node under root to its syntactic parent.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
