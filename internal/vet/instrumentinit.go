package vet

// instrumentinit proves the registration discipline from PR 4: metrics
// instruments (NewCounter/NewGauge/NewHistogram/NewTimer) are looked up in a
// global registry by name and live forever. Registering at package level or
// in init() costs one map entry per distinct metric; registering inside a
// request- or iteration-scoped function re-runs the registry lookup on the
// hot path and — when the name is dynamic — grows the registry without
// bound. So: instrument constructors may appear only in package-level var
// initializers or init functions. The metrics package itself is exempt (the
// Span API resolves its timer internally).

import (
	"go/ast"
)

var AnalyzerInstrumentInit = &Analyzer{
	Name: "instrumentinit",
	Doc:  "metrics.NewCounter/NewGauge/NewHistogram/NewTimer only at package-level var or init()",
	Run:  runInstrumentInit,
}

var instrumentCtors = map[string]bool{
	"NewCounter":   true,
	"NewGauge":     true,
	"NewHistogram": true,
	"NewTimer":     true,
}

func runInstrumentInit(pass *Pass) {
	if pass.Types.Path() == metricsPkgPath {
		return
	}
	reportCtors := func(root ast.Node, where string) {
		ast.Inspect(root, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != metricsPkgPath || !instrumentCtors[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(), "metrics.%s called %s; instruments must be registered in a package-level var or init() — per-call registration re-runs the registry lookup on the hot path and can leak registry entries", fn.Name(), where)
			return true
		})
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				if d.Name.Name == "init" && d.Recv == nil {
					continue // init() is registration time
				}
				reportCtors(d.Body, "inside function "+d.Name.Name)
			case *ast.GenDecl:
				// Direct package-level var initializers are the blessed form,
				// but a function literal stored in a package-level var still
				// runs per call.
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, v := range vs.Values {
						ast.Inspect(v, func(n ast.Node) bool {
							if lit, ok := n.(*ast.FuncLit); ok {
								reportCtors(lit.Body, "inside a function literal")
								return false
							}
							return true
						})
					}
				}
			}
		}
	}
}
