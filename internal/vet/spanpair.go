package vet

// spanpair proves the observability pairing invariant from PR 4: a metrics
// span that is opened must be ended, and a stopwatch that is started must be
// stopped, on every exit path. An unpaired span corrupts the parent/child
// self-time accounting (the pooled span struct is never recycled and the
// parent keeps accumulating child time), and an unstopped stopwatch silently
// drops the observation — both invisible to tests unless the exact path is
// timed. Tracked acquisitions:
//
//	ctx, end := metrics.Span(ctx, name)   =>   end() / defer end()
//	sw := timer.Start()                   =>   sw.Stop() / defer sw.Stop()
//
// A span-end function or stopwatch that demonstrably leaves the function
// (returned, stored, passed on) is skipped: ownership transferred, and the
// callee/caller contract is beyond a per-function proof.

import (
	"go/ast"
	"go/token"
	"go/types"
)

const metricsPkgPath = "dmml/internal/metrics"

var AnalyzerSpanPair = &Analyzer{
	Name: "spanpair",
	Doc:  "metrics.Span end funcs and Timer.Start stopwatches must be called/stopped on all paths",
	Run:  runSpanPair,
}

func runSpanPair(pass *Pass) {
	if pass.Types.Path() == metricsPkgPath {
		return
	}
	noRelease := func(ast.Node) bool { return false } // spans have no slot-transfer idiom

	isSpan := func(call *ast.CallExpr) bool {
		return isPkgFunc(pass.Info, call, metricsPkgPath, "Span")
	}
	isStart := func(call *ast.CallExpr) bool {
		fn := calleeFunc(pass.Info, call)
		return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == metricsPkgPath &&
			fn.Name() == "Start" && fn.Type().(*types.Signature).Recv() != nil
	}

	forEachFuncContext(pass.Package, func(fc funcContext) {
		for _, b := range findAcquires(pass, fc.body, isSpan, 1) {
			switch {
			case b.discarded:
				pass.Reportf(b.call.Pos(), "span end function is discarded; the span can never be ended")
			case b.storedAtBirth, b.naked:
				// Ownership transferred somewhere we can't follow; skip.
			case b.obj != nil:
				checkPaired(pass, fc, b, func(call *ast.CallExpr) bool {
					// end() — calling the bound function value.
					id, ok := ast.Unparen(call.Fun).(*ast.Ident)
					return ok && pass.Info.Uses[id] == b.obj
				}, "metrics span end %q is not called on %s; call it on this path or defer it", noRelease)
			}
		}
		for _, b := range findAcquires(pass, fc.body, isStart, 0) {
			switch {
			case b.discarded:
				pass.Reportf(b.call.Pos(), "stopwatch from Timer.Start is discarded; the observation can never be recorded")
			case b.storedAtBirth, b.naked:
				// Stopwatch handed off (stored in a struct, passed along); skip.
			case b.obj != nil:
				checkPaired(pass, fc, b, func(call *ast.CallExpr) bool {
					// sw.Stop() — method call on the bound stopwatch.
					sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "Stop" {
						return false
					}
					id, ok := ast.Unparen(sel.X).(*ast.Ident)
					return ok && pass.Info.Uses[id] == b.obj
				}, "stopwatch %q is not stopped on %s; call Stop on this path or defer it", noRelease)
			}
		}
	})
}

// checkPaired runs the escape scan and the all-paths release proof for one
// bound span/stopwatch resource.
func checkPaired(pass *Pass, fc funcContext, b acquireBinding, isRelease func(*ast.CallExpr) bool, msg string, releaseAnywhere func(ast.Node) bool) {
	obj := b.obj
	if esc := findEscape(pass, fc.body, obj, b.call, fc.decl.Body, releaseAnywhere); esc != nil {
		return // ownership left the function; not provable here
	}
	t := &pairTracker{
		acquireStmt: b.stmt,
		isRelease:   isRelease,
		// Only a result that IS the span-end func / stopwatch transfers
		// ownership; a result merely mentioning it does not end the span.
		returnsResource: func(ret *ast.ReturnStmt) bool {
			for _, r := range ret.Results {
				if isResourceExpr(pass.Info, r, obj) {
					return true
				}
			}
			return false
		},
		leak: func(pos token.Pos, where string) {
			pass.Reportf(pos, msg, obj.Name(), where)
		},
	}
	t.check(fc.body)
}
