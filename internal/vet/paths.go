package vet

// The acquire/release path engine shared by scratchpair, spanpair, and
// lockdiscipline. It is a structural abstract interpretation over the Go
// statement AST rather than a real CFG: each function body is walked in
// source order with a three-state lattice (before-acquire, live, released),
// branches are walked independently and merged with live-wins (a resource
// live on ANY continuing path is still live), and a resource that is live at
// a return or at function end is a leak. goto is not modeled (the engine
// tree has none); break/continue end the path being walked, which can hide a
// leak but never invents one. The design bias throughout is: a false
// positive costs an annotation, a false negative costs nothing that the
// dynamic tests didn't already cost, so when in doubt the engine stays
// conservative about RELEASING (a release must dominate the exit) and
// generous about ESCAPING (anything that looks like an ownership transfer
// is handled by the escape scanner, not reported as a leak here).

import (
	"go/ast"
	"go/token"
)

type relState int

const (
	stBefore relState = iota // acquire not yet executed on this path
	stLive                   // acquired and unreleased
	stDone                   // released, or a releasing defer is registered
)

// pairTracker checks one acquired resource within one function context.
type pairTracker struct {
	// acquireStmt is the statement performing the acquisition; walking past
	// it flips the state to stLive.
	acquireStmt ast.Stmt
	// isRelease reports whether this call releases the resource.
	isRelease func(*ast.CallExpr) bool
	// returnsResource reports whether the return statement hands the
	// resource to the caller (ownership transfer, not a leak; the escape
	// scanner decides whether that transfer is allowed).
	returnsResource func(*ast.ReturnStmt) bool
	// leak is invoked for every leaking exit. where is "return",
	// "function end", or "loop iteration".
	leak func(pos token.Pos, where string)
}

// check walks an entire function body and reports leaks.
func (t *pairTracker) check(body *ast.BlockStmt) {
	st, terminated := t.walkList(body.List, stBefore)
	if st == stLive && !terminated {
		t.leak(body.Rbrace, "function end")
	}
}

func (t *pairTracker) walkList(stmts []ast.Stmt, st relState) (relState, bool) {
	for _, s := range stmts {
		var term bool
		st, term = t.walkStmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

// mergeBranch folds one branch outcome into the running merge of continuing
// paths. Terminated branches (ending in return/break) drop out; among the
// continuing ones, live wins — if ANY continuing path still holds the
// resource, the merged path does.
func mergeBranch(acc relState, accAny bool, st relState, terminated bool) (relState, bool) {
	if terminated {
		return acc, accAny
	}
	if !accAny {
		return st, true
	}
	switch {
	case acc == stLive || st == stLive:
		return stLive, true
	case acc == stDone || st == stDone:
		return stDone, true
	}
	return stBefore, true
}

func (t *pairTracker) walkStmt(s ast.Stmt, st relState) (relState, bool) {
	if s == t.acquireStmt {
		return stLive, false
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return t.walkList(s.List, st)

	case *ast.LabeledStmt:
		return t.walkStmt(s.Stmt, st)

	case *ast.ReturnStmt:
		if st == stLive && !(t.returnsResource != nil && t.returnsResource(s)) && !t.nodeReleases(s) {
			t.leak(s.Pos(), "return")
		}
		return st, true

	case *ast.BranchStmt:
		// break/continue/goto leave this statement list; the engine does not
		// follow them, so the path simply ends here.
		return st, true

	case *ast.DeferStmt:
		if st == stLive && (t.callIsRelease(s.Call) || t.nodeReleases(s.Call)) {
			return stDone, false
		}
		return st, false

	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = t.walkStmt(s.Init, st)
		}
		if st == stLive && t.nodeReleases(s.Cond) {
			st = stDone
		}
		thenSt, thenTerm := t.walkList(s.Body.List, st)
		acc, accAny := mergeBranch(0, false, thenSt, thenTerm)
		if s.Else != nil {
			elseSt, elseTerm := t.walkStmt(s.Else, st)
			acc, accAny = mergeBranch(acc, accAny, elseSt, elseTerm)
		} else {
			acc, accAny = mergeBranch(acc, accAny, st, false)
		}
		if !accAny {
			return st, true // both arms terminated
		}
		return acc, false

	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = t.walkStmt(s.Init, st)
		}
		bodySt, _ := t.walkList(s.Body.List, st)
		// A resource acquired inside the body that is still live when the
		// body falls off its end leaks once per iteration.
		if st != stLive && bodySt == stLive {
			t.leak(s.Body.Rbrace, "loop iteration")
		}
		// Zero iterations are always possible as far as this engine knows,
		// so a release inside the body does not release the pre-loop state.
		return st, false

	case *ast.RangeStmt:
		bodySt, _ := t.walkList(s.Body.List, st)
		if st != stLive && bodySt == stLive {
			t.leak(s.Body.Rbrace, "loop iteration")
		}
		return st, false

	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = t.walkStmt(s.Init, st)
		}
		return t.walkCases(s.Body, st, hasDefaultClause(s.Body))

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = t.walkStmt(s.Init, st)
		}
		return t.walkCases(s.Body, st, hasDefaultClause(s.Body))

	case *ast.SelectStmt:
		return t.walkCases(s.Body, st, hasDefaultClause(s.Body))

	case *ast.GoStmt:
		// A release inside a go statement eventually runs; trust it.
		if st == stLive && t.nodeReleases(s.Call) {
			return stDone, false
		}
		return st, false

	default:
		// Linear statements: ExprStmt, AssignStmt, DeclStmt, SendStmt,
		// IncDecStmt, EmptyStmt. A release anywhere inside moves to stDone.
		if st == stLive && t.nodeReleases(s) {
			return stDone, false
		}
		return st, false
	}
}

// walkCases merges the clause bodies of a switch/select. Without a default
// clause the zero-clause path keeps the incoming state.
func (t *pairTracker) walkCases(body *ast.BlockStmt, st relState, hasDefault bool) (relState, bool) {
	acc, accAny := relState(0), false
	for _, c := range body.List {
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			list = c.Body
		case *ast.CommClause:
			list = c.Body
		}
		cs, cterm := t.walkList(list, st)
		acc, accAny = mergeBranch(acc, accAny, cs, cterm)
	}
	if !hasDefault {
		acc, accAny = mergeBranch(acc, accAny, st, false)
	}
	if !accAny {
		return st, true
	}
	return acc, false
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				return true
			}
		case *ast.CommClause:
			if c.Comm == nil {
				return true
			}
		}
	}
	return false
}

func (t *pairTracker) callIsRelease(call *ast.CallExpr) bool {
	return t.isRelease(call)
}

// nodeReleases reports whether any call expression inside n releases the
// resource. Nested function literals are included: a release inside a
// closure created here (a deferred cleanup func, a pool.Do worker body) is
// assumed to run. That is deliberately generous — it can miss a leak when
// the closure never executes, but it never flags correct code.
func (t *pairTracker) nodeReleases(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && t.isRelease(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// ---- function-context enumeration ----

// funcContext is one independently-analyzed flow context: a declared
// function's body or a function literal's body. Statements of nested
// literals are excluded from the enclosing context's control flow.
type funcContext struct {
	decl *ast.FuncDecl // enclosing declaration (for directives); never nil
	body *ast.BlockStmt
}

// forEachFuncContext yields every function context in the package: each
// FuncDecl body and each FuncLit body, the latter attributed to its
// enclosing declaration for directive lookup.
func forEachFuncContext(pkg *Package, fn func(fc funcContext)) {
	forEachFuncBody(pkg, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		fn(funcContext{decl: decl, body: body})
		ast.Inspect(body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				fn(funcContext{decl: decl, body: lit.Body})
				// Keep descending: literals nest.
			}
			return true
		})
	})
}

// inspectContext walks the statements of one function context without
// descending into nested function literals (which are their own contexts;
// the walk starts at a BlockStmt, so any FuncLit encountered is nested).
func inspectContext(body *ast.BlockStmt, fn func(n ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
