package vet

// Package loading for the analyzer suite. dmmlvet must stay dependency-free
// (stdlib only, buildable offline), so instead of golang.org/x/tools/go/packages
// we load the module ourselves: walk the tree for Go packages, parse them with
// go/parser, topologically sort by module-internal imports, and type-check each
// package with go/types. Imports of module-internal paths resolve to the
// packages we just checked; stdlib imports resolve through the "source"
// importer, which compiles $GOROOT/src from source and needs no pre-built
// export data or network.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string // full import path, e.g. "dmml/internal/la"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is the loaded module: every package, fully type-checked, sharing one
// FileSet.
type Module struct {
	Path string // module path from go.mod
	Root string // absolute directory containing go.mod
	Fset *token.FileSet
	Pkgs map[string]*Package // by import path

	imp *moduleImporter // reused by LoadTestPackage so stdlib is checked once
}

// FindModuleRoot walks upward from dir looking for go.mod and returns the
// directory containing it plus the declared module path.
func FindModuleRoot(dir string) (root, modpath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if data, err := os.ReadFile(gomod); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					mp := strings.TrimSpace(rest)
					if unq, err := strconv.Unquote(mp); err == nil {
						mp = unq
					}
					return dir, mp, nil
				}
			}
			return "", "", fmt.Errorf("%s: no module directive", gomod)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("go.mod not found above %s", dir)
		}
		dir = parent
	}
}

// discoverDirs returns every directory under root that holds at least one
// non-test .go file, skipping testdata, hidden, and underscore directories.
func discoverDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
			dirs = append(dirs, dir)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	// WalkDir visits files of one directory contiguously, but be safe: dedupe.
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			out = append(out, d)
		}
	}
	return out, nil
}

// parseDir parses the non-test Go files of one directory, with comments (the
// analyzers read //dmml: directives).
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// moduleImporter resolves module-internal import paths to already-checked
// packages and delegates everything else to the stdlib source importer.
type moduleImporter struct {
	modpath string
	pkgs    map[string]*types.Package
	std     types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if path == mi.modpath || strings.HasPrefix(path, mi.modpath+"/") {
		if p, ok := mi.pkgs[path]; ok {
			return p, nil
		}
		return nil, fmt.Errorf("module package %s not loaded (import cycle or load order bug)", path)
	}
	return mi.std.Import(path)
}

// newInfo returns a types.Info with every map the analyzers need populated.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load parses and type-checks every package of the module rooted at (or
// above) dir. Type errors in the tree are returned as a single joined error;
// a partially usable Module is still returned so callers can decide.
func Load(dir string) (*Module, error) {
	root, modpath, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := discoverDirs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	type parsed struct {
		path    string
		dir     string
		files   []*ast.File
		imports []string // module-internal imports only
	}
	byPath := make(map[string]*parsed)
	var order []string
	for _, d := range dirs {
		files, err := parseDir(fset, d)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		path := modpath
		if rel != "." {
			path = modpath + "/" + filepath.ToSlash(rel)
		}
		p := &parsed{path: path, dir: d, files: files}
		for _, f := range files {
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if ip == modpath || strings.HasPrefix(ip, modpath+"/") {
					p.imports = append(p.imports, ip)
				}
			}
		}
		byPath[path] = p
		order = append(order, path)
	}

	// Topological sort over module-internal imports (DFS, cycle-detecting).
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[string]int)
	var topo []string
	var visit func(path string) error
	visit = func(path string) error {
		p, ok := byPath[path]
		if !ok {
			return nil // unresolved internal import; type check will report it
		}
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("import cycle through %s", path)
		}
		state[path] = visiting
		for _, ip := range p.imports {
			if err := visit(ip); err != nil {
				return err
			}
		}
		state[path] = done
		topo = append(topo, path)
		return nil
	}
	for _, path := range order {
		if err := visit(path); err != nil {
			return nil, err
		}
	}

	mod := &Module{Path: modpath, Root: root, Fset: fset, Pkgs: make(map[string]*Package)}
	imp := &moduleImporter{
		modpath: modpath,
		pkgs:    make(map[string]*types.Package),
		std:     importer.ForCompiler(fset, "source", nil),
	}
	var typeErrs []string
	for _, path := range topo {
		p := byPath[path]
		info := newInfo()
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				typeErrs = append(typeErrs, err.Error())
			},
		}
		tpkg, _ := conf.Check(path, fset, p.files, info)
		imp.pkgs[path] = tpkg
		mod.Pkgs[path] = &Package{
			Path:  path,
			Dir:   p.dir,
			Fset:  fset,
			Files: p.files,
			Types: tpkg,
			Info:  info,
		}
	}
	mod.imp = imp
	if len(typeErrs) > 0 {
		return mod, fmt.Errorf("type errors while loading module:\n  %s", strings.Join(typeErrs, "\n  "))
	}
	return mod, nil
}

// LoadTestPackage parses and type-checks a single out-of-tree package (an
// analyzer golden testdata package) against an already-loaded module, so the
// testdata can import real engine packages like dmml/internal/pool.
func LoadTestPackage(mod *Module, dir, path string) (*Package, error) {
	files, err := parseDir(mod.Fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	imp := mod.imp
	info := newInfo()
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err.Error()) },
	}
	tpkg, _ := conf.Check(path, mod.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type errors in %s:\n  %s", dir, strings.Join(typeErrs, "\n  "))
	}
	return &Package{Path: path, Dir: dir, Fset: mod.Fset, Files: files, Types: tpkg, Info: info}, nil
}
