package vet

// noalloc is the static twin of the AllocsPerRun==0 pins: a function
// annotated //dmml:noalloc must not contain allocating constructs, and
// neither may anything it statically calls inside the module. Where the
// dynamic pin proves one exercised path allocation-free, this proves every
// path of every annotated kernel — including branches the benchmark never
// takes.
//
// Flagged constructs: make/new, append (except the capacity-reuse idiom
// append(s[:k], ...) onto an explicit reslice), map/slice composite
// literals, map writes, closures that capture variables, string
// concatenation and string<->[]byte/[]rune conversions, go statements,
// interface boxing of non-pointer values (call arguments and assignments),
// variadic calls that materialize their argument slice, print/println, and
// calls that cannot be proven allocation-free: dynamic calls through
// function values or interfaces, and calls into packages outside the
// audited set.
//
// Arguments of panic calls are exempt: a panicking path terminates the
// function, so allocating the diagnostic string there costs nothing at
// steady state — this keeps the engine's fmt.Sprintf length-check panics
// out of the audit without weakening the hot path.
//
// Calls are resolved transitively: a module-internal callee is either
// annotated //dmml:noalloc itself (checked on its own) or is recursively
// audited with the same rules. Calls into dmml/internal/pool's scratch API
// and dmml/internal/metrics are allowed by fiat: both are engineered for
// zero steady-state allocations and carry their own AllocsPerRun pins.
// Allowed stdlib packages: math, math/bits, sync/atomic.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var AnalyzerNoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "//dmml:noalloc functions (and their module-internal callees) must not contain allocating constructs",
	Run:  runNoAlloc,
}

var noallocAllowedStdPkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

// noallocAllowedFuncs are engine functions allowed by fiat (zero
// steady-state allocations by design, dynamically pinned).
var noallocAllowedFuncs = map[string]bool{
	poolPkgPath + ".GetF64":       true,
	poolPkgPath + ".GetF64Zeroed": true,
	poolPkgPath + ".PutF64":       true,
	poolPkgPath + ".GetInt":       true,
	poolPkgPath + ".PutInt":       true,
	poolPkgPath + ".Workers":      true,
	poolPkgPath + ".SerialNow":    true,
}

// allocViolation is one allocating construct found during an audit.
type allocViolation struct {
	pos  token.Pos
	what string
}

// noallocAuditor memoizes transitive audits of unannotated callees.
type noallocAuditor struct {
	pass *Pass
	// declIndex maps a function object to its declaration; built lazily
	// over the current package plus every module package.
	declIndex map[*types.Func]auditTarget
	// verdict memoizes per-function audit results; nil slice = clean.
	// A function present with in-progress sentinel breaks recursion cycles.
	verdict    map[*types.Func][]allocViolation
	inProgress map[*types.Func]bool
}

// auditTarget is a function declaration plus the package whose type info
// resolves it.
type auditTarget struct {
	pkg  *Package
	decl *ast.FuncDecl
}

func runNoAlloc(pass *Pass) {
	aud := &noallocAuditor{
		pass:       pass,
		verdict:    make(map[*types.Func][]allocViolation),
		inProgress: make(map[*types.Func]bool),
	}
	forEachFuncBody(pass.Package, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		if !funcDirectives(decl)["noalloc"] {
			return
		}
		for _, v := range aud.auditBody(pass.Package, decl) {
			pass.Reportf(v.pos, "%s in //dmml:noalloc flow of %s", v.what, decl.Name.Name)
		}
	})
}

// buildDeclIndex indexes every declared function of the current package and
// (when available) every module package, so calls resolve to bodies.
func (a *noallocAuditor) buildDeclIndex() {
	if a.declIndex != nil {
		return
	}
	a.declIndex = make(map[*types.Func]auditTarget)
	add := func(pkg *Package) {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					a.declIndex[fn] = auditTarget{pkg: pkg, decl: fd}
				}
			}
		}
	}
	add(a.pass.Package)
	if a.pass.Module != nil {
		for _, pkg := range a.pass.Module.Pkgs {
			if pkg != a.pass.Package {
				add(pkg)
			}
		}
	}
}

// auditBody returns the allocating constructs in decl's own body. For the
// root annotated function, callers report each violation; transitive
// callees summarize as a single violation at the call site.
func (a *noallocAuditor) auditBody(pkg *Package, decl *ast.FuncDecl) []allocViolation {
	var out []allocViolation
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, allocViolation{pos: pos, what: fmt.Sprintf(format, args...)})
	}
	info := pkg.Info

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		// Arguments of a panic call are off the steady-state path: the
		// function is terminating, so allocating the diagnostic (fmt.Sprintf
		// in a length-check panic) is free. Skip the whole subtree.
		if call, ok := n.(*ast.CallExpr); ok {
			if id, okID := ast.Unparen(call.Fun).(*ast.Ident); okID {
				if b, okB := info.Uses[id].(*types.Builtin); okB && b.Name() == "panic" {
					return false
				}
			}
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			report(n.Pos(), "go statement (spawns a goroutine)")

		case *ast.FuncLit:
			if capt := capturedVar(info, n, decl); capt != "" {
				report(n.Pos(), "closure captures variable %q (heap-allocates the closure)", capt)
			}

		case *ast.CompositeLit:
			tv, ok := info.Types[n]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				report(n.Pos(), "map literal")
			case *types.Slice:
				report(n.Pos(), "slice literal")
			}

		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				// tv.Value != nil means the concatenation folded to a
				// constant at compile time — no runtime allocation.
				if tv, ok := info.Types[n]; ok && tv.Type != nil && isStringType(tv.Type) && tv.Value == nil {
					report(n.Pos(), "string concatenation")
				}
			}

		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if ix, ok := ast.Unparen(l).(*ast.IndexExpr); ok {
					if tv, ok := info.Types[ix.X]; ok && tv.Type != nil {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							report(l.Pos(), "map write (may grow the map)")
						}
					}
				}
			}
			a.checkBoxing(pkg, n, report)

		case *ast.CallExpr:
			a.checkCall(pkg, decl, n, report)
		}
		return true
	})
	return out
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// capturedVar returns the name of a variable the literal captures from its
// enclosing function, or "".
func capturedVar(info *types.Info, lit *ast.FuncLit, decl *ast.FuncDecl) string {
	capt := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if capt != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared inside the enclosing function but outside the
		// literal.
		if v.Pos() >= decl.Pos() && v.Pos() <= decl.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() <= lit.End()) {
			capt = v.Name()
			return false
		}
		return true
	})
	return capt
}

// checkBoxing flags assignments that convert a non-pointer concrete value
// to an interface type.
func (a *noallocAuditor) checkBoxing(pkg *Package, as *ast.AssignStmt, report func(token.Pos, string, ...any)) {
	// := infers the concrete type, so only plain assignments can box.
	if as.Tok == token.DEFINE || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, l := range as.Lhs {
		lt, ok := pkg.Info.Types[l]
		if !ok || lt.Type == nil {
			continue
		}
		rt, okR := pkg.Info.Types[as.Rhs[i]]
		if !okR || rt.Type == nil {
			continue
		}
		if boxes(lt.Type, rt.Type) {
			report(as.Rhs[i].Pos(), "interface boxing of non-pointer value (%s -> %s)", lockTypeName(rt.Type), lockTypeName(lt.Type))
		}
	}
}

// boxes reports whether storing a value of type from into a location of
// type to heap-boxes it: to is an interface, from is a concrete
// non-pointer type.
func boxes(to, from types.Type) bool {
	if _, isIface := to.Underlying().(*types.Interface); !isIface {
		return false
	}
	if from == nil {
		return false
	}
	switch from.Underlying().(type) {
	case *types.Interface, *types.Pointer:
		return false
	}
	if b, ok := from.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

// checkCall audits one call inside a noalloc flow.
func (a *noallocAuditor) checkCall(pkg *Package, decl *ast.FuncDecl, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	info := pkg.Info

	// Type conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			src, okSrc := info.Types[call.Args[0]]
			if okSrc && src.Type != nil {
				toStr, fromStr := isStringType(tv.Type), isStringType(src.Type)
				_, toSlice := tv.Type.Underlying().(*types.Slice)
				_, fromSlice := src.Type.Underlying().(*types.Slice)
				if (toStr && fromSlice) || (fromStr && toSlice) {
					report(call.Pos(), "string <-> slice conversion")
				}
				if boxes(tv.Type, src.Type) {
					report(call.Pos(), "conversion boxes value into interface %s", lockTypeName(tv.Type))
				}
			}
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make")
			case "new":
				report(call.Pos(), "new")
			case "append":
				// append(s[:k], ...) onto an explicit reslice reuses
				// capacity; any other append may grow.
				if len(call.Args) == 0 {
					return
				}
				if _, reslice := ast.Unparen(call.Args[0]).(*ast.SliceExpr); !reslice {
					report(call.Pos(), "append (may grow the backing array)")
				}
			case "print", "println":
				report(call.Pos(), "%s (allocates its arguments)", b.Name())
			}
			return
		}
	}

	fn := calleeFunc(info, call)
	if fn == nil {
		// Indirect call through a function value or interface method.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, okSel := info.Selections[sel]; okSel && s.Kind() == types.MethodVal {
				report(call.Pos(), "dynamic method call %s (cannot be proven allocation-free)", types.ExprString(call.Fun))
				return
			}
		}
		report(call.Pos(), "dynamic call through a function value (cannot be proven allocation-free)")
		return
	}
	// Interface method calls resolve to a *types.Func whose receiver is the
	// interface: still dynamic.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			report(call.Pos(), "interface method call %s.%s (cannot be proven allocation-free)", lockTypeName(sig.Recv().Type()), fn.Name())
			return
		}
	}

	fullName := ""
	if fn.Pkg() != nil {
		fullName = fn.Pkg().Path() + "." + fn.Name()
	}

	// Variadic calls materialize their argument slice.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Variadic() &&
		!call.Ellipsis.IsValid() && len(call.Args) >= sig.Params().Len() {
		report(call.Pos(), "variadic call to %s materializes its argument slice", fn.Name())
		return
	}

	// Interface boxing at the call boundary.
	if sig, ok := fn.Type().(*types.Signature); ok && !sig.Variadic() {
		for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
			at, okA := info.Types[call.Args[i]]
			if okA && at.Type != nil && boxes(sig.Params().At(i).Type(), at.Type) {
				report(call.Args[i].Pos(), "argument %d of %s boxes a non-pointer value into an interface", i+1, fn.Name())
			}
		}
	}

	if fn.Pkg() == nil {
		return // error.Error etc. on universe scope
	}
	pkgPath := fn.Pkg().Path()
	switch {
	case noallocAllowedFuncs[fullName]:
		return
	case pkgPath == metricsPkgPath:
		return // instruments are engineered zero-alloc and pinned dynamically
	case a.isModulePath(pkgPath):
		a.auditCallee(fn, call, report)
	case noallocAllowedStdPkgs[pkgPath]:
		return
	default:
		report(call.Pos(), "call to %s.%s, outside the audited set (not provably allocation-free)", pkgPath, fn.Name())
	}
}

func (a *noallocAuditor) isModulePath(path string) bool {
	if path == a.pass.Types.Path() {
		return true // same package as the annotated root: always auditable
	}
	if a.pass.Module != nil {
		return path == a.pass.Module.Path || strings.HasPrefix(path, a.pass.Module.Path+"/")
	}
	return strings.HasPrefix(path, "dmml/")
}

// auditCallee transitively audits a module-internal callee that is not
// itself annotated, reporting a single summarized violation at the call
// site.
func (a *noallocAuditor) auditCallee(fn *types.Func, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	a.buildDeclIndex()
	target, ok := a.declIndex[fn]
	if !ok {
		// Same-package functions resolve via the test package's own index;
		// anything else unresolvable is suspicious.
		report(call.Pos(), "call to %s whose body is not available for audit", fn.Name())
		return
	}
	if funcDirectives(target.decl)["noalloc"] {
		return // annotated: audited at its own declaration
	}
	if a.inProgress[fn] {
		return // recursion cycle: judged by the rest of its body
	}
	if vs, seen := a.verdict[fn]; seen {
		a.reportCalleeViolations(fn, call, vs, report)
		return
	}
	a.inProgress[fn] = true
	vs := a.auditBody(target.pkg, target.decl)
	a.inProgress[fn] = false
	a.verdict[fn] = vs
	a.reportCalleeViolations(fn, call, vs, report)
}

func (a *noallocAuditor) reportCalleeViolations(fn *types.Func, call *ast.CallExpr, vs []allocViolation, report func(token.Pos, string, ...any)) {
	if len(vs) == 0 {
		return
	}
	v := vs[0]
	report(call.Pos(), "calls %s, which allocates: %s at %s", fn.Name(), v.what, a.pass.Fset.Position(v.pos))
}
