package vet

// scratchpair proves the pooled-scratch invariant from PR 2: every buffer
// taken from the typed scratch allocator (pool.GetF64 / pool.GetF64Zeroed)
// reaches pool.PutF64 on every exit path of the acquiring function — via a
// defer or a release dominating each return — unless the function is
// annotated //dmml:owns-scratch because the buffer intentionally outlives
// the call (returned to the caller, parked in a struct). A leaked scratch
// buffer is invisible to correctness tests: the engine just quietly falls
// back to allocating, which is exactly the steady-state garbage the
// allocator exists to remove.

import (
	"go/ast"
	"go/token"
	"go/types"
)

const poolPkgPath = "dmml/internal/pool"

var AnalyzerScratchPair = &Analyzer{
	Name: "scratchpair",
	Doc:  "pool.GetF64/GetF64Zeroed buffers must reach pool.PutF64 on all paths (annotate //dmml:owns-scratch for intentional escapes)",
	Run:  runScratchPair,
}

func isScratchAcquire(info *types.Info, call *ast.CallExpr) bool {
	return isPkgFunc(info, call, poolPkgPath, "GetF64") || isPkgFunc(info, call, poolPkgPath, "GetF64Zeroed") ||
		isPkgFunc(info, call, poolPkgPath, "GetInt")
}

// scratchReleaseName maps an acquire call to the release function that pairs
// with it: GetInt buffers go back through PutInt, float buffers through
// PutF64. Releasing through the wrong twin silently drops the buffer, so the
// proof demands the matching one.
func scratchReleaseName(info *types.Info, acquire *ast.CallExpr) string {
	if isPkgFunc(info, acquire, poolPkgPath, "GetInt") {
		return "PutInt"
	}
	return "PutF64"
}

func runScratchPair(pass *Pass) {
	if pass.Types.Path() == poolPkgPath {
		return // the allocator's own implementation
	}
	isAcquire := func(call *ast.CallExpr) bool { return isScratchAcquire(pass.Info, call) }
	// releaseAnywhere: any pool.PutF64/PutInt call, regardless of argument —
	// used only to sanction the slot-transfer idiom.
	releaseAnywhere := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(n ast.Node) bool {
			if found {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok &&
				(isPkgFunc(pass.Info, call, poolPkgPath, "PutF64") || isPkgFunc(pass.Info, call, poolPkgPath, "PutInt")) {
				found = true
				return false
			}
			return true
		})
		return found
	}

	forEachFuncContext(pass.Package, func(fc funcContext) {
		if funcDirectives(fc.decl)["owns-scratch"] {
			return
		}
		for _, b := range findAcquires(pass, fc.body, isAcquire, 0) {
			switch {
			case b.discarded:
				pass.Reportf(b.call.Pos(), "scratch buffer from %s is discarded; it can never be released", calleeName(pass, b.call))
			case b.storedAtBirth:
				pass.Reportf(b.call.Pos(), "scratch buffer from %s is stored outside the function at acquisition; annotate the function //dmml:owns-scratch if ownership transfers", calleeName(pass, b.call))
			case b.naked:
				pass.Reportf(b.call.Pos(), "scratch buffer from %s has no local binding; bind it so it can be released, or annotate //dmml:owns-scratch", calleeName(pass, b.call))
			case b.obj == nil:
				// Unresolvable binding (type error); nothing to prove.
			default:
				checkScratchObj(pass, fc, b, releaseAnywhere)
			}
		}
	})
}

func checkScratchObj(pass *Pass, fc funcContext, b acquireBinding, releaseAnywhere func(ast.Node) bool) {
	obj := b.obj
	if esc := findEscape(pass, fc.body, obj, b.call, fc.decl.Body, releaseAnywhere); esc != nil {
		if esc.sanctioned {
			return // slot-transfer: the enclosing merge loop releases it
		}
		pass.Reportf(b.call.Pos(), "scratch buffer %q escapes (%s) without //dmml:owns-scratch on %s", obj.Name(), esc.desc, fc.decl.Name.Name)
		return
	}
	release := scratchReleaseName(pass.Info, b.call)
	t := &pairTracker{
		acquireStmt: b.stmt,
		isRelease: func(call *ast.CallExpr) bool {
			return isPkgFunc(pass.Info, call, poolPkgPath, release) &&
				len(call.Args) == 1 && containsIdentOf(pass.Info, call.Args[0], obj)
		},
		// Only a result that IS the buffer (possibly resliced) transfers
		// ownership — and findEscape has already flagged that as an escape,
		// so this is belt-and-suspenders. A result merely mentioning the
		// buffer (return buf[0]) is a borrow; the leak must still fire.
		returnsResource: func(ret *ast.ReturnStmt) bool {
			for _, r := range ret.Results {
				if isResourceExpr(pass.Info, r, obj) {
					return true
				}
			}
			return false
		},
		leak: func(pos token.Pos, where string) {
			pass.Reportf(pos, "scratch buffer %q (acquired at %s) is not released on %s; add pool.%s on this path or defer it", obj.Name(), pass.Fset.Position(b.call.Pos()), where, release)
		},
	}
	t.check(fc.body)
}

func calleeName(pass *Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(pass.Info, call); fn != nil {
		return "pool." + fn.Name()
	}
	return "the scratch pool"
}
