//go:build race

package experiments

// raceEnabled lets timing pins skip under the race detector, whose
// instrumentation distorts relative datapath costs (compute-bound paths
// slow far more than I/O-bound ones).
const raceEnabled = true
