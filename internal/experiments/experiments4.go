package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"dmml/internal/factorized"
	"dmml/internal/la"
	"dmml/internal/opt"
	"dmml/internal/workload"
)

// e18Snowflake builds the canonical 3-level snowflake: a fact table with two
// branches, each joining through an intermediate dimension to a second-level
// one — fact→customer→region and fact→product→category.
func e18Snowflake(quick bool, seed int64) (*workload.Snowflake, *factorized.JoinTree, error) {
	r := rand.New(rand.NewSource(seed))
	s, err := workload.GenerateSnowflake(r, workload.SnowflakeConfig{
		FactRows:  scale(quick, 120000),
		FactFeats: 6,
		Nodes: []workload.SnowNode{
			{Rows: 2000, Feats: 10, Parent: -1}, // customer ← fact
			{Rows: 50, Feats: 30, Parent: 0},    // region ← customer
			{Rows: 3000, Feats: 8, Parent: -1},  // product ← fact
			{Rows: 100, Feats: 24, Parent: 2},   // category ← product
		},
		Task:   workload.RegressionTask,
		Noise:  0.1,
		Signal: 1,
	})
	if err != nil {
		return nil, nil, err
	}
	nodes := make([]factorized.Node, len(s.X))
	var edges []factorized.Edge
	for v := range s.X {
		nodes[v] = factorized.Node{X: s.X[v], Rows: s.Rows[v]}
		if v > 0 {
			edges = append(edges, factorized.Edge{Parent: s.Parents[v], Child: v, FK: s.FKs[v]})
		}
	}
	tree, err := factorized.NewJoinTree(nodes, edges)
	if err != nil {
		return nil, nil, err
	}
	return s, tree, nil
}

// e18Result is one variant's measurements, shared by the E18 table and the
// invariant-pinning test.
type e18Result struct {
	variant   string
	train     time.Duration
	perIter   time.Duration // GD: per iteration; ridge: the whole solve
	finalLoss float64
	predicted float64 // modeled speedup over the materialized twin (1 = twin)
}

// e18Run trains the same ridge model on a 3-level snowflake two ways per
// solver — pushdown kernels over the join tree vs. materialize-then-train —
// with identical optimizer configs, so any accuracy delta is floating-point
// reassociation only. Materialization time is kept out of the per-iteration
// numbers; the factorized-vs-materialized claim is about steady-state
// iteration cost.
func e18Run(quick bool) ([]e18Result, int, error) {
	s, tree, err := e18Snowflake(quick, 18)
	if err != nil {
		return nil, 0, err
	}
	cfg := opt.GDConfig{Step: 0.02, MaxIter: 12, Backtracking: true}
	iters := time.Duration(cfg.MaxIter)
	gramPred := tree.FlopsPerGramMaterialized() / tree.FlopsPerGram()

	start := time.Now()
	factGD, err := opt.GradientDescent(tree, s.Y, opt.Squared{}, cfg)
	if err != nil {
		return nil, 0, err
	}
	tFactGD := time.Since(start)

	m := tree.Materialize()
	start = time.Now()
	matGD, err := opt.GradientDescent(opt.DenseData{M: m}, s.Y, opt.Squared{}, cfg)
	if err != nil {
		return nil, 0, err
	}
	tMatGD := time.Since(start)

	d := tree.Cols()
	ridge := func(g *la.Dense, c []float64) ([]float64, error) {
		for j := 0; j < d; j++ {
			g.Set(j, j, g.At(j, j)+0.01)
		}
		return la.SolveSPD(g, c)
	}
	start = time.Now()
	wFact, err := ridge(tree.Gram(), tree.XtY(s.Y))
	if err != nil {
		return nil, 0, err
	}
	tFactRidge := time.Since(start)
	start = time.Now()
	wMat, err := ridge(la.Gram(m), la.XtY(m, s.Y))
	if err != nil {
		return nil, 0, err
	}
	tMatRidge := time.Since(start)

	loss := func(w []float64) float64 {
		l, _ := opt.LossAndGradient(tree, s.Y, w, opt.Squared{}, 0)
		return l
	}
	return []e18Result{
		{"gd+factorized", tFactGD, tFactGD / iters, loss(factGD.W), tree.Speedup()},
		{"gd+materialized", tMatGD, tMatGD / iters, loss(matGD.W), 1},
		{"ridge+factorized", tFactRidge, tFactRidge, loss(wFact), gramPred},
		{"ridge+materialized", tMatRidge, tMatRidge, loss(wMat), 1},
	}, d, nil
}

// E18FactorizedSnowflake reproduces factorized learning generalized past star
// schemas (F/LMFAO): on a 3-level snowflake, the pushdown kernels never touch
// a dimension at fact-row granularity — group-sums move along each PK–FK edge
// — so both the GD iteration and the factorized normal equations beat their
// materialized twins at identical accuracy.
func E18FactorizedSnowflake(quick bool) (Table, error) {
	t := Table{
		ID:     "E18",
		Title:  "factorized learning on a 3-level snowflake: join-tree pushdown vs materialize-then-train",
		Header: []string{"variant", "time", "per_iter", "speedup", "predicted", "final_loss"},
	}
	results, width, err := e18Run(quick)
	if err != nil {
		return t, err
	}
	// Each factorized variant is compared to the materialized twin that
	// follows it in the result list.
	for i, r := range results {
		twin := results[i|1] // 0↔1, 2↔3: the materialized twin's index
		t.Rows = append(t.Rows, []string{
			r.variant, d(r.train), d(r.perIter),
			f(float64(twin.perIter) / float64(r.perIter)),
			f(r.predicted), f(r.finalLoss),
		})
	}
	t.Notes = fmt.Sprintf(
		"same optimizer config and labels on both paths (materialization time excluded from per_iter); joined width %d over two fact branches with second-level dimensions", width)
	return t, nil
}
