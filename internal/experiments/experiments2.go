package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"dmml/internal/dml"
	"dmml/internal/featureng"
	"dmml/internal/la"
	"dmml/internal/modelsel"
	"dmml/internal/opt"
	"dmml/internal/paramserver"
	"dmml/internal/storage"
	"dmml/internal/workload"
)

// E5Rewrites reproduces the SystemML rewrite shape: optimized expression
// plans dominate naive evaluation on fusion- and reordering-sensitive
// expressions.
func E5Rewrites(quick bool) (Table, error) {
	t := Table{
		ID:     "E5",
		Title:  "declarative ML rewrites: naive vs optimized evaluation (SystemML)",
		Header: []string{"expression", "t_naive", "t_optimized", "speedup", "cells_naive", "cells_opt"},
	}
	n := scale(quick, 200000)
	side := 400
	if quick {
		side = 120
	}
	r := rand.New(rand.NewSource(10000))
	x, _, _ := workload.Regression(r, n, 20, 0)
	a, _, _ := workload.Regression(r, side, side, 0)
	b, _, _ := workload.Regression(r, side, side, 0)
	v, _, _ := workload.Regression(r, side, 1, 0)
	env := dml.Env{
		"X": dml.Matrix(x), "A": dml.Matrix(a), "B": dml.Matrix(b), "v": dml.Matrix(v),
	}
	cases := []string{
		"sum(X ^ 2)",
		"trace(A %*% B)",
		"A %*% B %*% v",
		"sum(X + X)",
	}
	reps := 5
	// Loop-invariant code motion gets its own row: a Gram-form GD loop whose
	// invariant products hoist out.
	licmSrc := `
w = 0 * t(X) %*% y2
for (it in 1:10) {
  w = w - 0.000005 * (t(X) %*% X %*% w - t(X) %*% y2)
}
sum(w ^ 2)`
	y2 := la.NewDense(n, 1)
	for i := 0; i < n; i++ {
		y2.Set(i, 0, r.NormFloat64())
	}
	env["y2"] = dml.Matrix(y2)
	cases = append(cases, licmSrc)
	rowName := func(src string) string {
		if src == licmSrc {
			return "GD loop (LICM)"
		}
		return src
	}
	for _, src := range cases {
		p, err := dml.Parse(src)
		if err != nil {
			return t, err
		}
		optProg := p.Optimize(dml.ShapesFromEnv(env))

		var naiveStats, optStats *dml.EvalStats
		start := time.Now()
		for k := 0; k < reps; k++ {
			if _, naiveStats, err = p.Run(env); err != nil {
				return t, err
			}
		}
		tNaive := time.Since(start)
		start = time.Now()
		for k := 0; k < reps; k++ {
			if _, optStats, err = optProg.Run(env); err != nil {
				return t, err
			}
		}
		tOpt := time.Since(start)
		t.Rows = append(t.Rows, []string{
			rowName(src), d(tNaive), d(tOpt), f(float64(tNaive) / float64(tOpt)),
			fmt.Sprint(naiveStats.CellsAllocated), fmt.Sprint(optStats.CellsAllocated),
		})
	}
	return t, nil
}

// E7ModelSearch reproduces the TuPAQ shape: successive halving matches grid
// search's best configuration at a fraction of the training epochs.
func E7ModelSearch(quick bool) (Table, error) {
	t := Table{
		ID:     "E7",
		Title:  "model selection: grid vs successive halving (TuPAQ)",
		Header: []string{"strategy", "configs", "total_epochs", "best_val_acc", "time"},
	}
	n := scale(quick, 20000)
	r := rand.New(rand.NewSource(11000))
	x, y, _ := workload.Classification(r, n, 20, 0.05)
	split := n * 3 / 4
	trainIdx := seq(0, split)
	valIdx := seq(split, n)
	tr := &modelsel.SGDTrainer{
		XTrain: x.SelectRows(trainIdx), YTrain: slice(y, trainIdx),
		XVal: x.SelectRows(valIdx), YVal: slice(y, valIdx),
		Seed: 11,
	}
	configs := modelsel.Grid(map[string][]float64{
		"step": {0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0},
		"l2":   {0, 0.0001, 0.01, 0.1},
	})
	maxEpochs := 16

	start := time.Now()
	gridRes, gridStats, err := modelsel.EvaluateAll(tr, configs, maxEpochs)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{
		"grid (full budget)", fmt.Sprint(len(configs)), fmt.Sprint(gridStats.TotalEpochs),
		f(gridRes[0].Score), d(time.Since(start)),
	})

	start = time.Now()
	batched, err := modelsel.TrainBatched(tr, configs, maxEpochs)
	if err != nil {
		return t, err
	}
	bestBatched := 0.0
	for _, b := range batched {
		if b.Score > bestBatched {
			bestBatched = b.Score
		}
	}
	t.Rows = append(t.Rows, []string{
		"grid (batched scan)", fmt.Sprint(len(configs)), fmt.Sprint(len(configs) * maxEpochs),
		f(bestBatched), d(time.Since(start)),
	})

	start = time.Now()
	shRes, shStats, err := modelsel.SuccessiveHalving(tr, configs, 1, maxEpochs, 2)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{
		"successive halving", fmt.Sprint(len(configs)), fmt.Sprint(shStats.TotalEpochs),
		f(shRes[0].Score), d(time.Since(start)),
	})
	t.Notes = fmt.Sprintf("epoch savings: %.1fx fewer epochs for successive halving; batching amortizes the scan across all %d configs",
		float64(gridStats.TotalEpochs)/float64(shStats.TotalEpochs), len(configs))
	return t, nil
}

// E8ColumbusReuse reproduces the Columbus shape: Gram-matrix reuse answers a
// batch of feature-subset explorations with one data pass.
func E8ColumbusReuse(quick bool) (Table, error) {
	t := Table{
		ID:     "E8",
		Title:  "feature-subset exploration with intermediate reuse (Columbus)",
		Header: []string{"strategy", "subsets", "data_passes", "time", "max_mse_delta"},
	}
	n := scale(quick, 100000)
	dFeats := 40
	r := rand.New(rand.NewSource(12000))
	x, y, _ := workload.Regression(r, n, dFeats, 0.2)
	subsets := make([][]int, 30)
	for i := range subsets {
		subsets[i] = r.Perm(dFeats)[:10+r.Intn(10)]
	}
	start := time.Now()
	naiveFits, naiveStats, err := (&featureng.Explorer{L2: 0.01}).Explore(x, y, subsets)
	if err != nil {
		return t, err
	}
	tNaive := time.Since(start)
	start = time.Now()
	reuseFits, reuseStats, err := (&featureng.Explorer{Reuse: true, L2: 0.01}).Explore(x, y, subsets)
	if err != nil {
		return t, err
	}
	tReuse := time.Since(start)
	maxDelta := 0.0
	for i := range naiveFits {
		dlt := naiveFits[i].TrainMSE - reuseFits[i].TrainMSE
		if dlt < 0 {
			dlt = -dlt
		}
		if dlt > maxDelta {
			maxDelta = dlt
		}
	}
	t.Rows = append(t.Rows, []string{"naive (rescan per subset)", "30", fmt.Sprint(naiveStats.DataPasses), d(tNaive), "0"})
	t.Rows = append(t.Rows, []string{"gram reuse", "30", fmt.Sprint(reuseStats.DataPasses), d(tReuse), f(maxDelta)})
	t.Notes = fmt.Sprintf("speedup %.1fx with identical models (max MSE delta %.2g)",
		float64(tNaive)/float64(tReuse), maxDelta)
	return t, nil
}

// E9ParamServer reproduces the parameter-server shape: async throughput
// exceeds BSP under per-RPC latency, while all modes converge.
func E9ParamServer(quick bool) (Table, error) {
	t := Table{
		ID:     "E9",
		Title:  "parameter server: BSP vs SSP vs async under injected RPC latency",
		Header: []string{"cluster", "mode", "workers", "time", "worker_idle", "final_loss", "pushes"},
	}
	n := scale(quick, 20000)
	r := rand.New(rand.NewSource(13000))
	x, y, _ := workload.Classification(r, n, 16, 0.02)
	latency := 50 * time.Microsecond
	if quick {
		latency = 10 * time.Microsecond
	}
	straggler := 2 * time.Millisecond
	if quick {
		straggler = 500 * time.Microsecond
	}
	for _, sc := range []struct {
		name  string
		delay time.Duration
	}{{"uniform", 0}, {"straggler", straggler}} {
		for _, mode := range []paramserver.Mode{paramserver.BSP, paramserver.SSP, paramserver.Async} {
			for _, workers := range []int{2, 8} {
				ps, err := paramserver.NewServer(16, 4, latency)
				if err != nil {
					return t, err
				}
				start := time.Now()
				res, err := paramserver.Train(ps, opt.DenseRows{M: x}, y, opt.Logistic{}, paramserver.TrainConfig{
					Workers: workers, Epochs: 3, BatchSize: 64,
					Step: 0.5, Decay: 0.5, Mode: mode, Staleness: 3, Seed: 13,
					StragglerDelay: sc.delay,
				})
				if err != nil {
					return t, err
				}
				t.Rows = append(t.Rows, []string{
					sc.name, mode.String(), fmt.Sprint(workers), d(time.Since(start)),
					d(res.WorkerIdle), f(res.FinalLoss), fmt.Sprint(res.Pushes),
				})
			}
		}
	}
	t.Notes = "with a straggler, BSP workers idle at barriers; SSP bounds the idling; async never waits"
	return t, nil
}

// E11BufferPool reproduces the out-of-core shape: iterative access through a
// shrinking buffer pool degrades gracefully until the working set thrashes.
func E11BufferPool(quick bool) (Table, error) {
	t := Table{
		ID:     "E11",
		Title:  "out-of-core iteration through a buffer pool (memory budget sweep)",
		Header: []string{"pool_pages", "total_pages", "time", "hits", "misses", "spill_reads"},
		Notes:  "capacity ≥ working set: all hits after load; below: misses/reloads grow",
	}
	rows := scale(quick, 80000)
	cols := 16
	pageRows := rows / 64 // 64 pages
	r := rand.New(rand.NewSource(14000))
	x, _, _ := workload.Regression(r, rows, cols, 0)
	v := make([]float64, cols)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	passes := 5
	for _, capacity := range []int{64, 16, 4} {
		bp, err := storage.NewBufferPool(capacity, tmpDir())
		if err != nil {
			return t, err
		}
		pm, err := storage.NewPagedMatrix(bp, rows, cols, pageRows)
		if err != nil {
			return t, err
		}
		if err := pm.FromDense(x); err != nil {
			return t, err
		}
		bp.ResetStats()
		start := time.Now()
		for p := 0; p < passes; p++ {
			if _, err := pm.MatVec(v); err != nil {
				return t, err
			}
		}
		elapsed := time.Since(start)
		st := bp.Stats()
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(capacity), fmt.Sprint(pm.NumPages()), d(elapsed),
			fmt.Sprint(st.Hits), fmt.Sprint(st.Misses), fmt.Sprint(st.SpillReads),
		})
		if err := pm.Drop(); err != nil {
			return t, err
		}
	}
	return t, nil
}

// E12ReuseAcrossCV reproduces the lifecycle reuse shape: cross-validated
// hyperparameter sweeps that share per-fold Gram blocks beat recompute-
// per-config by the pass ratio.
func E12ReuseAcrossCV(quick bool) (Table, error) {
	t := Table{
		ID:     "E12",
		Title:  "intermediate reuse across CV folds × ridge configs",
		Header: []string{"strategy", "lambdas", "folds", "data_passes", "time", "best_lambda"},
	}
	n := scale(quick, 60000)
	r := rand.New(rand.NewSource(15000))
	x, y, _ := workload.Regression(r, n, 24, 0.5)
	lambdas := []float64{1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100, 1000}
	k := 5

	start := time.Now()
	naive, naivePasses, err := modelsel.RidgeCVNaive(x, y, lambdas, k, 21)
	if err != nil {
		return t, err
	}
	tNaive := time.Since(start)
	start = time.Now()
	shared, sharedPasses, err := modelsel.RidgeCVShared(x, y, lambdas, k, 21)
	if err != nil {
		return t, err
	}
	tShared := time.Since(start)
	t.Rows = append(t.Rows, []string{
		"naive", fmt.Sprint(len(lambdas)), fmt.Sprint(k), fmt.Sprint(naivePasses), d(tNaive), f(naive[0].Lambda),
	})
	t.Rows = append(t.Rows, []string{
		"shared gram", fmt.Sprint(len(lambdas)), fmt.Sprint(k), fmt.Sprint(sharedPasses), d(tShared), f(shared[0].Lambda),
	})
	t.Notes = fmt.Sprintf("speedup %.1fx, both select λ=%g", float64(tNaive)/float64(tShared), shared[0].Lambda)
	return t, nil
}

// E14FaultTolerance reproduces the fault-tolerance shape real parameter
// servers are built around: with per-RPC request loss, latency jitter, and a
// deterministic worker kill injected, every coordination mode still completes
// — transient failures are absorbed by bounded retry/backoff, the killed
// worker is restarted from the shared clock, and periodic checkpoints bound
// the work lost to a fatal crash — at a final loss matching the fault-free
// run.
func E14FaultTolerance(quick bool) (Table, error) {
	t := Table{
		ID:     "E14",
		Title:  "parameter server under injected faults: retry, restart, checkpoint",
		Header: []string{"mode", "faults", "time", "retries", "timeouts", "recoveries", "final_loss"},
	}
	n := scale(quick, 20000)
	r := rand.New(rand.NewSource(15000))
	x, y, _ := workload.Classification(r, n, 16, 0.02)
	jitter := 20 * time.Microsecond
	if quick {
		jitter = 5 * time.Microsecond
	}
	for _, mode := range []paramserver.Mode{paramserver.BSP, paramserver.SSP, paramserver.Async} {
		for _, faulty := range []bool{false, true} {
			ps, err := paramserver.NewServer(16, 4, 0)
			if err != nil {
				return t, err
			}
			cfg := paramserver.TrainConfig{
				Workers: 4, Epochs: 4, BatchSize: 64,
				Step: 0.5, Decay: 0.5, Mode: mode, Staleness: 3, Seed: 15,
			}
			if faulty {
				cfg.Faults = &paramserver.FaultConfig{
					FailProb:   0.05,
					Jitter:     jitter,
					KillAtTick: map[int]int{1: 8},
					Seed:       15,
				}
				cfg.MaxWorkerRestarts = 2
				cfg.Checkpoint = paramserver.CheckpointConfig{Path: ckptPath(), Every: 64}
			}
			start := time.Now()
			res, err := paramserver.Train(ps, opt.DenseRows{M: x}, y, opt.Logistic{}, cfg)
			if err != nil {
				return t, err
			}
			label := "off"
			if faulty {
				label = "on"
			}
			t.Rows = append(t.Rows, []string{
				mode.String(), label, d(time.Since(start)),
				fmt.Sprint(res.Retries), fmt.Sprint(res.Timeouts), fmt.Sprint(res.Recoveries),
				f(res.FinalLoss),
			})
		}
	}
	t.Notes = "5% request loss + one worker kill: retries absorb the losses, the restarted worker rejoins at the clock, final loss matches the fault-free run"
	return t, nil
}

// E16CompiledFusion A/Bs the two fused-region backends: the per-op tile
// interpreter against the compiled closure/flat kernels, on the same
// workloads E15 uses. Both sides run the identical fused plan — only the
// loop body differs — so the speedup column isolates the interpreter
// dispatch tax (plus the vectorized sigmoid on templates that hit a flat
// kernel). The stats columns pin that every region really ran compiled on
// the compiled side and none did on the interpreter side.
func E16CompiledFusion(quick bool) (Table, error) {
	t := Table{
		ID:     "E16",
		Title:  "compiled fused kernels: closure/flat templates vs tile interpreter (SPOOF codegen)",
		Header: []string{"expression", "t_interp", "t_compiled", "speedup", "regions", "compiled"},
	}
	n := scale(quick, 200000)
	r := rand.New(rand.NewSource(16000))
	x, _, _ := workload.Regression(r, n, 20, 0)
	y, _, _ := workload.Regression(r, n, 20, 0)
	w, _, _ := workload.Regression(r, 20, 1, 0)
	env := dml.Env{"X": dml.Matrix(x), "Y": dml.Matrix(y), "w": dml.Matrix(w)}
	cases := []string{
		"sigmoid(X * 2 + 1) * X - X / 3",
		"Y - 0.0001 * X",
		"(X - Y) * 0.5",
		"sum((X - Y) ^ 2)",
		"rowSums(X * X + Y)",
		"(X * 2 + Y) %*% w",
	}
	reps := 3
	for _, src := range cases {
		p, err := dml.Parse(src)
		if err != nil {
			return t, err
		}
		shapes := dml.ShapesFromEnv(env)
		interp := p.OptimizeFusion(shapes, dml.FusionInterp)
		compiled := p.OptimizeFusion(shapes, dml.FusionCompiled)

		var inStats, coStats *dml.EvalStats
		start := time.Now()
		for k := 0; k < reps; k++ {
			if _, inStats, err = interp.Run(env); err != nil {
				return t, err
			}
		}
		tIn := time.Since(start)
		start = time.Now()
		for k := 0; k < reps; k++ {
			if _, coStats, err = compiled.Run(env); err != nil {
				return t, err
			}
		}
		tCo := time.Since(start)
		if coStats.FusedRegions == 0 {
			return t, fmt.Errorf("experiments: E16: %q compiled without fused regions", src)
		}
		if coStats.FusedCompiled != coStats.FusedRegions {
			return t, fmt.Errorf("experiments: E16: %q ran %d of %d regions compiled", src, coStats.FusedCompiled, coStats.FusedRegions)
		}
		if inStats.FusedCompiled != 0 {
			return t, fmt.Errorf("experiments: E16: %q interpreter side ran %d regions compiled", src, inStats.FusedCompiled)
		}
		t.Rows = append(t.Rows, []string{
			src, d(tIn), d(tCo), f(float64(tIn) / float64(tCo)),
			fmt.Sprint(coStats.FusedRegions), fmt.Sprint(coStats.FusedCompiled),
		})
	}
	t.Notes = "same fused plan on both sides; compiled kernels replace per-op switch dispatch with one direct call chain, and template shapes drop to single-pass flat loops"
	return t, nil
}

// Order lists experiment ids in EXPERIMENTS.md order.
var Order = []string{
	"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E-ABL1", "E-ABL2",
}

// All runs every experiment, returning tables in EXPERIMENTS.md order.
func All(quick bool) ([]Table, error) {
	fns := []func(bool) (Table, error){
		E1FactorizedVsMaterialized,
		E2HamletRule,
		E3CompressionRatio,
		E4CompressedMV,
		E5Rewrites,
		E6BismarckParallel,
		E7ModelSearch,
		E8ColumbusReuse,
		E9ParamServer,
		E10SparseVsDense,
		E11BufferPool,
		E12ReuseAcrossCV,
		E13PlannerChoice,
		E14FaultTolerance,
		E15Fusion,
		E16CompiledFusion,
		E17OutOfCoreTraining,
		E18FactorizedSnowflake,
		EKMeansPruning,
		EColumnCoCoding,
	}
	out := make([]Table, 0, len(fns))
	for _, fn := range fns {
		tbl, err := fn(quick)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", tbl.ID, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

func slice(xs []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = xs[j]
	}
	return out
}

// EColumnCoCoding is the CLA co-coding ablation the DESIGN calls out:
// correlated low-cardinality columns compress better (and their ops run
// faster) when co-coded into one group.
func EColumnCoCoding(quick bool) (Table, error) {
	t := Table{
		ID:    "E-ABL2",
		Title: "ablation: CLA column co-coding on correlated columns",
		Header: []string{"co-coding", "groups", "ratio", "t_matvec",
			"result_delta"},
	}
	n := scale(quick, 300000)
	r := rand.New(rand.NewSource(16000))
	// Six columns in three perfectly correlated pairs (e.g. country ↔
	// currency in a log table), plus Zipf skew.
	m := laNewDense(n, 6)
	for i := 0; i < n; i++ {
		for p := 0; p < 3; p++ {
			v := float64(r.Intn(6))
			m.Set(i, 2*p, v)
			m.Set(i, 2*p+1, v*10+float64(p))
		}
	}
	v := make([]float64, 6)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	var baseline []float64
	reps := 10
	for _, coCode := range []bool{false, true} {
		cm := compressCompress(m, coCode)
		start := time.Now()
		var out []float64
		for k := 0; k < reps; k++ {
			out = cm.MatVec(v)
		}
		elapsed := time.Since(start)
		delta := 0.0
		if baseline == nil {
			baseline = out
		} else {
			for i := range out {
				if dd := out[i] - baseline[i]; dd > delta {
					delta = dd
				} else if -dd > delta {
					delta = -dd
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(coCode), fmt.Sprint(len(cm.Groups())),
			f(cm.CompressionRatio()), d(elapsed), f(delta),
		})
	}
	t.Notes = "co-coding merges correlated pairs: fewer groups, higher ratio, same results"
	return t, nil
}

// E15Fusion reproduces the SPOOF operator-fusion shape: fused cell and
// row-aggregate templates evaluate a whole elementwise region in one pass
// over the data, eliminating the intermediate matrices a materialized
// pipeline allocates. Both sides run the full rewrite pipeline (CSE,
// reordering, LICM); the only difference is the fusion pass, so the deltas
// isolate fusion itself.
func E15Fusion(quick bool) (Table, error) {
	t := Table{
		ID:     "E15",
		Title:  "operator fusion: fused cell/row templates vs materialized pipelines (SPOOF)",
		Header: []string{"expression", "t_unfused", "t_fused", "speedup", "cells_unfused", "cells_fused", "alloc_ratio"},
	}
	n := scale(quick, 200000)
	r := rand.New(rand.NewSource(15000))
	x, _, _ := workload.Regression(r, n, 20, 0)
	y, _, _ := workload.Regression(r, n, 20, 0)
	w, _, _ := workload.Regression(r, 20, 1, 0)
	labels, _, _ := workload.Regression(r, n, 1, 0)
	env := dml.Env{
		"X": dml.Matrix(x), "Y": dml.Matrix(y), "w": dml.Matrix(w), "y2": dml.Matrix(labels),
	}
	// A GD loop whose per-iteration elementwise work (sigmoid residual and
	// weight update) fuses while the matrix-vector products stay as-is.
	gdSrc := `
w2 = w * 0
for (it in 1:8) {
  g = t(X) %*% (sigmoid(X %*% w2) - y2)
  w2 = w2 - 0.0001 * g
}
sum(w2 ^ 2)`
	cases := []string{
		"sigmoid(X * 2 + 1) * X - X / 3",
		"sum((X - Y) ^ 2)",
		"rowSums(X * X + Y)",
		"(X * 2 + Y) %*% w",
		gdSrc,
	}
	rowName := func(src string) string {
		if src == gdSrc {
			return "logistic GD loop (fused update)"
		}
		return src
	}
	reps := 3
	var totalUn, totalFu int64
	for _, src := range cases {
		p, err := dml.Parse(src)
		if err != nil {
			return t, err
		}
		shapes := dml.ShapesFromEnv(env)
		unfused := p.OptimizeUnfused(shapes)
		fused := p.Optimize(shapes)

		var unStats, fuStats *dml.EvalStats
		start := time.Now()
		for k := 0; k < reps; k++ {
			if _, unStats, err = unfused.Run(env); err != nil {
				return t, err
			}
		}
		tUn := time.Since(start)
		start = time.Now()
		for k := 0; k < reps; k++ {
			if _, fuStats, err = fused.Run(env); err != nil {
				return t, err
			}
		}
		tFu := time.Since(start)
		if fuStats.FusedRegions == 0 {
			return t, fmt.Errorf("experiments: E15: %q compiled without fused regions", rowName(src))
		}
		totalUn += unStats.CellsAllocated
		totalFu += fuStats.CellsAllocated
		ratio := "inf"
		if fuStats.CellsAllocated > 0 {
			ratio = f(float64(unStats.CellsAllocated) / float64(fuStats.CellsAllocated))
		}
		t.Rows = append(t.Rows, []string{
			rowName(src), d(tUn), d(tFu), f(float64(tUn) / float64(tFu)),
			fmt.Sprint(unStats.CellsAllocated), fmt.Sprint(fuStats.CellsAllocated), ratio,
		})
	}
	t.Notes = fmt.Sprintf(
		"both sides run CSE/reordering/LICM; fusion cuts intermediate cell allocation %sx overall (%d -> %d cells)",
		f(float64(totalUn)/float64(totalFu)), totalUn, totalFu)
	return t, nil
}
