// Package experiments implements the reproduction harness: one function per
// experiment in EXPERIMENTS.md (E1–E13 plus the E-ABL ablations), each
// regenerating the canonical
// result shape of a system the paper surveys. Every function returns a
// Table that cmd/dmmlbench prints and bench_test.go exercises.
//
// Wall-clock timing lives here (harness level), not in the library packages.
package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"dmml/internal/compress"
	"dmml/internal/core"
	"dmml/internal/factorized"
	"dmml/internal/hamlet"
	"dmml/internal/la"
	"dmml/internal/ml"
	"dmml/internal/opt"
	"dmml/internal/workload"
)

// Table is a labeled experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "-- %s\n", t.Notes)
	}
	return b.String()
}

func f(v float64) string       { return fmt.Sprintf("%.3g", v) }
func d(v time.Duration) string { return fmt.Sprintf("%.2fms", float64(v.Microseconds())/1000) }

// scale shrinks workload sizes in quick mode (tests/benches).
func scale(quick bool, full int) int {
	if quick {
		s := full / 10
		if s < 10 {
			s = 10
		}
		return s
	}
	return full
}

// E1FactorizedVsMaterialized reproduces the Orion/F shape: per-iteration GLM
// training over a star schema, factorized vs. materialized, swept over the
// tuple ratio. Factorized wins grow with TR; near TR≈1 the approaches tie.
func E1FactorizedVsMaterialized(quick bool) (Table, error) {
	t := Table{
		ID:     "E1",
		Title:  "factorized vs materialized GLM training over a join (Orion/F)",
		Header: []string{"tuple_ratio", "fact_rows", "dim_rows", "t_factorized", "t_materialized", "speedup", "predicted"},
		Notes:  "speedup >1 means factorized wins; crossover expected near TR≈1",
	}
	factRows := scale(quick, 100000)
	iters := 8
	for _, tr := range []int{1, 5, 20, 50} {
		r := rand.New(rand.NewSource(int64(1000 + tr)))
		dimRows := factRows / tr
		if dimRows < 1 {
			dimRows = 1
		}
		s, err := workload.GenerateStar(r, workload.StarConfig{
			FactRows: factRows, FactFeats: 4,
			DimRows: []int{dimRows}, DimFeats: []int{30},
			Task: workload.RegressionTask, Noise: 0.1, DimSignal: 1,
		})
		if err != nil {
			return t, err
		}
		design, err := factorized.NewDesign(s.FactX, s.FKs, s.DimX)
		if err != nil {
			return t, err
		}
		cfg := opt.GDConfig{Step: 0.05, MaxIter: iters, Backtracking: false}

		start := time.Now()
		if _, err := opt.GradientDescent(design, s.Y, opt.Squared{}, cfg); err != nil {
			return t, err
		}
		tFact := time.Since(start)

		start = time.Now()
		m := design.Materialize()
		if _, err := opt.GradientDescent(opt.DenseData{M: m}, s.Y, opt.Squared{}, cfg); err != nil {
			return t, err
		}
		tMat := time.Since(start)

		t.Rows = append(t.Rows, []string{
			fmt.Sprint(tr), fmt.Sprint(factRows), fmt.Sprint(dimRows),
			d(tFact), d(tMat), f(float64(tMat) / float64(tFact)), f(design.Speedup()),
		})
	}
	return t, nil
}

// E2HamletRule reproduces Hamlet's claim: the tuple-ratio rule predicts when
// dropping a FK join costs no accuracy.
func E2HamletRule(quick bool) (Table, error) {
	t := Table{
		ID:     "E2",
		Title:  "avoiding joins safely (Hamlet tuple-ratio rule)",
		Header: []string{"scenario", "tuple_ratio", "rule_says", "acc_joined", "acc_avoided", "gap"},
		Notes:  "rule=avoid rows should show gap≈0; rule=keep rows should show positive gap",
	}
	n := scale(quick, 20000)
	cases := []struct {
		name      string
		dimRows   int
		dimSignal float64
	}{
		{"high-TR, no dim signal", n / 200, 0},
		{"high-TR, weak dim signal", n / 200, 0.3},
		{"low-TR, strong dim signal", n / 10, 3},
	}
	for i, c := range cases {
		r := rand.New(rand.NewSource(int64(2000 + i)))
		s, err := workload.GenerateStar(r, workload.StarConfig{
			FactRows: n, FactFeats: 4,
			DimRows: []int{max(c.dimRows, 2)}, DimFeats: []int{6},
			Task: workload.ClassificationTask, Noise: 0.02, DimSignal: c.dimSignal,
		})
		if err != nil {
			return t, err
		}
		res, err := hamlet.CompareEmpirical(s, 0, hamlet.DefaultRule(), 0.25, int64(i))
		if err != nil {
			return t, err
		}
		verdict := "keep"
		if res.Decision.Avoid {
			verdict = "avoid"
		}
		t.Rows = append(t.Rows, []string{
			c.name, f(res.Decision.TupleRatio), verdict,
			f(res.AccJoined), f(res.AccAvoided), f(res.Gap()),
		})
	}
	return t, nil
}

// E3CompressionRatio reproduces CLA's compression-ratio table: ratios grow
// with skew and shrink with cardinality; continuous data falls back to UC.
func E3CompressionRatio(quick bool) (Table, error) {
	t := Table{
		ID:     "E3",
		Title:  "CLA compression ratio by column regime",
		Header: []string{"column", "cardinality", "skew", "encoding", "ratio"},
		Notes:  "dense bytes / compressed bytes; UC fallback ⇒ ratio ≈ 1",
	}
	n := scale(quick, 200000)
	r := rand.New(rand.NewSource(3000))
	add := func(name string, col []float64, card int, skew float64) {
		m := la.NewDense(len(col), 1)
		for i, v := range col {
			m.Set(i, 0, v)
		}
		cm := compress.Compress(m, compress.Options{})
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprint(card), f(skew),
			cm.Groups()[0].Encoding(), f(cm.CompressionRatio()),
		})
	}
	for _, card := range []int{4, 100, 10000} {
		for _, skew := range []float64{0, 1.5} {
			add("zipf", workload.ZipfColumn(r, n, card, skew), card, skew)
		}
	}
	sorted := make([]float64, n)
	for i := range sorted {
		sorted[i] = float64(i / (n / 16))
	}
	add("sorted-runs", sorted, 16, 0)
	cont := make([]float64, n)
	for i := range cont {
		cont[i] = r.NormFloat64()
	}
	add("continuous", cont, n, 0)
	return t, nil
}

// E4CompressedMV reproduces CLA's operations claim: matrix–vector over the
// compressed form is competitive with dense, while using a fraction of the
// memory.
func E4CompressedMV(quick bool) (Table, error) {
	t := Table{
		ID:     "E4",
		Title:  "matrix–vector over compressed vs dense (CLA operations)",
		Header: []string{"skew", "ratio", "t_dense", "t_compressed", "rel_time", "mem_dense", "mem_compressed"},
		Notes:  "rel_time ≈ 1 means compressed ops keep pace while shrinking memory",
	}
	n := scale(quick, 300000)
	reps := 20
	for _, skew := range []float64{0, 1.0, 1.5} {
		r := rand.New(rand.NewSource(int64(4000 + int(skew*10))))
		m := workload.TelemetryMatrix(r, n, []int{8, 16, 4, 32, 64, 5, 9, 12}, skew)
		cm := compress.Compress(m, compress.Options{CoCode: true})
		v := make([]float64, m.Cols())
		for i := range v {
			v[i] = r.NormFloat64()
		}
		// Quiesce the allocator so timings are not dominated by GC debt from
		// the previous experiment's allocations.
		runtime.GC()
		start := time.Now()
		for k := 0; k < reps; k++ {
			la.MatVec(m, v)
		}
		tDense := time.Since(start)
		runtime.GC()
		start = time.Now()
		for k := 0; k < reps; k++ {
			cm.MatVec(v)
		}
		tComp := time.Since(start)
		t.Rows = append(t.Rows, []string{
			f(skew), f(cm.CompressionRatio()), d(tDense), d(tComp),
			f(float64(tComp) / float64(tDense)),
			fmt.Sprint(cm.DenseSizeBytes()), fmt.Sprint(cm.SizeBytes()),
		})
	}
	return t, nil
}

// E6BismarckParallel reproduces Bismarck's parallel-SGD comparison:
// model-averaging and shared-atomic parallelism versus sequential SGD.
func E6BismarckParallel(quick bool) (Table, error) {
	t := Table{
		ID:     "E6",
		Title:  "Bismarck UDA parallel SGD: shared vs model-averaging",
		Header: []string{"mode", "workers", "time", "final_loss"},
		Notes:  "both parallel modes should approach sequential loss with better time at higher worker counts",
	}
	n := scale(quick, 200000)
	r := rand.New(rand.NewSource(6000))
	x, y, _ := workload.Classification(r, n, 50, 0.02)
	cfg := opt.SGDConfig{Step: 0.5, Decay: 0.5, Epochs: 4, Seed: 7}

	start := time.Now()
	seq, err := opt.SGD(opt.DenseRows{M: x}, y, opt.Logistic{}, cfg)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"sequential", "1", d(time.Since(start)), f(last(seq.EpochLoss))})

	for _, mode := range []opt.ParallelMode{opt.ModelAverage, opt.SharedAtomic} {
		name := "model-average"
		if mode == opt.SharedAtomic {
			name = "shared-atomic"
		}
		for _, workers := range []int{2, 4, 8} {
			start := time.Now()
			res, err := opt.ParallelSGD(opt.DenseRows{M: x}, y, opt.Logistic{}, cfg, workers, mode)
			if err != nil {
				return t, err
			}
			t.Rows = append(t.Rows, []string{name, fmt.Sprint(workers), d(time.Since(start)), f(last(res.EpochLoss))})
		}
	}
	return t, nil
}

func last(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}

// E10SparseVsDense reproduces the data-layout shape: CSR beats dense GEMV
// once sparsity is high enough; dense wins on dense data.
func E10SparseVsDense(quick bool) (Table, error) {
	t := Table{
		ID:     "E10",
		Title:  "sparse (CSR) vs dense matrix–vector by sparsity",
		Header: []string{"sparsity", "nnz", "t_dense", "t_csr", "csr_speedup"},
		Notes:  "CSR wins at high sparsity; dense wins when data is dense",
	}
	n := scale(quick, 4000)
	dcols := 2000
	if quick {
		dcols = 400
	}
	reps := 20
	for _, density := range []float64{0.5, 0.1, 0.01, 0.001} {
		r := rand.New(rand.NewSource(int64(7000 + int(density*1000))))
		sp := workload.SparseMatrix(r, n, dcols, density)
		dn := sp.ToDense()
		v := make([]float64, dcols)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		start := time.Now()
		for k := 0; k < reps; k++ {
			la.MatVec(dn, v)
		}
		tDense := time.Since(start)
		start = time.Now()
		for k := 0; k < reps; k++ {
			sp.MatVec(v)
		}
		tCSR := time.Since(start)
		t.Rows = append(t.Rows, []string{
			f(1 - density), fmt.Sprint(sp.NNZ()), d(tDense), d(tCSR),
			f(float64(tDense) / float64(tCSR)),
		})
	}
	return t, nil
}

// E13PlannerChoice validates the core planner end-to-end: on both sides of
// the factorized/materialized and dense/compressed crossovers, the plan it
// picks must be the faster one when both are forced and measured.
func E13PlannerChoice(quick bool) (Table, error) {
	t := Table{
		ID:     "E13",
		Title:  "cost-based planner vs measured best plan",
		Header: []string{"scenario", "chosen_plan", "t_chosen", "t_alternative", "correct"},
	}
	factRows := scale(quick, 60000)

	// Scenario A: high tuple ratio → factorized should win.
	// Scenario B: tuple ratio < 1 → materialized should win.
	type scenario struct {
		name    string
		dimRows int
		alt     map[string]string
	}
	scenarios := []scenario{
		{"normalized TR=100", factRows / 100, map[string]string{
			"factorized+iterative": "materialized+iterative", "materialized+iterative": "factorized+iterative",
			"factorized+direct": "materialized+direct", "materialized+direct": "factorized+direct",
		}},
		{"normalized TR=0.2", factRows * 5, map[string]string{
			"factorized+iterative": "materialized+iterative", "materialized+iterative": "factorized+iterative",
			"factorized+direct": "materialized+direct", "materialized+direct": "factorized+direct",
		}},
	}
	for i, sc := range scenarios {
		r := rand.New(rand.NewSource(int64(8000 + i)))
		s, err := workload.GenerateStar(r, workload.StarConfig{
			FactRows: factRows, FactFeats: 4,
			DimRows: []int{max(sc.dimRows, 2)}, DimFeats: []int{24},
			Task: workload.RegressionTask, Noise: 0.1, DimSignal: 1,
		})
		if err != nil {
			return t, err
		}
		design, err := factorized.NewDesign(s.FactX, s.FKs, s.DimX)
		if err != nil {
			return t, err
		}
		task := core.Task{Loss: core.SquaredLoss, L2: 0.01, MaxIter: 10}
		res, err := core.TrainNormalized(design, s.Y, task, core.Options{})
		if err != nil {
			return t, err
		}
		altName := sc.alt[res.Plan]
		timePlan := func(plan string) (time.Duration, error) {
			start := time.Now()
			_, err := core.TrainNormalized(design, s.Y, task, core.Options{ForcePlan: plan})
			return time.Since(start), err
		}
		tChosen, err := timePlan(res.Plan)
		if err != nil {
			return t, err
		}
		tAlt, err := timePlan(altName)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			sc.name, res.Plan, d(tChosen), d(tAlt), fmt.Sprint(tChosen <= tAlt*2),
		})
	}
	return t, nil
}

// E2b runs the k-means pruning ablation the DESIGN calls out: the
// triangle-inequality bound must cut distance evaluations without changing
// the clustering.
func EKMeansPruning(quick bool) (Table, error) {
	t := Table{
		ID:     "E-ABL1",
		Title:  "ablation: k-means triangle-inequality pruning",
		Header: []string{"variant", "dist_evals", "time", "inertia"},
	}
	n := scale(quick, 50000)
	r := rand.New(rand.NewSource(9000))
	x, _, _ := workload.ClusteredPoints(r, n, 8, 8, 1.5)
	for _, pruned := range []bool{false, true} {
		km := &ml.KMeans{K: 8, Seed: 5, Pruned: pruned, MaxIter: 30}
		start := time.Now()
		if err := km.Fit(x); err != nil {
			return t, err
		}
		name := "lloyd"
		if pruned {
			name = "lloyd+pruning"
		}
		t.Rows = append(t.Rows, []string{name, fmt.Sprint(km.DistEval), d(time.Since(start)), f(km.Inertia(x))})
	}
	return t, nil
}
