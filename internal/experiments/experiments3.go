package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"dmml/internal/compress"
	"dmml/internal/la"
	"dmml/internal/ooc"
	"dmml/internal/opt"
	"dmml/internal/storage"
	"dmml/internal/workload"
)

// residencyProbe wraps an out-of-core matrix so every block delivery samples
// the pool's resident byte count — the observable the bounded-memory claim is
// pinned on. It satisfies opt.BlockData through the embedded matrix; only the
// block stream is intercepted.
type residencyProbe struct {
	*ooc.Matrix
	bp  *storage.BufferPool
	max int64
}

func (p *residencyProbe) ForEachBlock(f func(b opt.RowBlock) error) error {
	return p.Matrix.ForEachBlock(func(b opt.RowBlock) error {
		if rb := p.bp.ResidentBytes(); rb > p.max {
			p.max = rb
		}
		return f(b)
	})
}

// oocBudgetOverride, when positive, replaces E17's default buffer-pool
// budget of one quarter of the dense footprint. Set via SetOOCBudget from
// dmmlbench's -ooc-budget flag so the out-of-core datapath can be explored
// under different memory pressures without editing the experiment.
var oocBudgetOverride int64

// SetOOCBudget overrides the buffer-pool byte budget used by the
// out-of-core experiments; 0 restores the default (dense footprint / 4).
func SetOOCBudget(b int64) { oocBudgetOverride = b }

// e17Result is one variant's measurements, shared by the E17 table and the
// invariant-pinning test.
type e17Result struct {
	variant     string
	train       time.Duration
	finalLoss   float64
	denseBytes  int64
	pagedBytes  int64
	budget      int64
	maxResident int64
	evictions   int64
	spillReads  int64
}

// e17Run trains logistic regression on quantized telemetry data whose dense
// footprint is 4x the buffer-pool byte budget, under three datapaths: raw
// (uncompressed) pages with no prefetch — the naive page-thrash baseline —
// CLA-compressed pages, and CLA plus the async block prefetcher. Each variant
// gets a fresh pool and spill directory so nothing is warm across runs.
func e17Run(quick bool) ([]e17Result, error) {
	rows := scale(quick, 160000)
	cards := []int{
		8, 16, 4, 32, 64, 5, 9, 12, 3, 7, 24, 48, 6, 10, 2, 20,
		14, 28, 11, 40, 18, 3, 5, 36, 9, 22, 4, 13, 56, 6, 26, 8,
	}
	cols := len(cards)
	denseBytes := 8 * int64(rows) * int64(cols)
	budget := denseBytes / 4
	if oocBudgetOverride > 0 {
		budget = oocBudgetOverride
	}
	blockRows := rows / 64

	r := rand.New(rand.NewSource(17000))
	x := workload.TelemetryMatrix(r, rows, cards, 1.0)
	// Labels from a planted linear model over the quantized features, with 5%
	// flips so the optimum is interior.
	wTrue := make([]float64, cols)
	for j := range wTrue {
		wTrue[j] = r.NormFloat64()
	}
	margins := la.MatVec(x, wTrue)
	y := make([]float64, rows)
	for i, m := range margins {
		if (m > 0) != (r.Float64() < 0.05) {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}

	cfg := opt.StreamConfig{Step: 0.05, Decay: 0.9, L2: 1e-3, Epochs: 5}
	// Co-code correlated low-cardinality columns so each compressed block
	// carries fewer groups: fewer code arrays to unpack per pin, fewer
	// per-row lookups in the operate-over-compressed kernels.
	cla := compress.Options{CoCode: true}
	variants := []struct {
		name string
		opts ooc.Options
	}{
		{"raw-thrash", ooc.Options{BlockRows: blockRows, NoCompress: true}},
		{"cla", ooc.Options{BlockRows: blockRows, CompressOpts: cla}},
		{"cla+prefetch", ooc.Options{BlockRows: blockRows, Prefetch: true, CompressOpts: cla}},
	}

	out := make([]e17Result, 0, len(variants))
	for _, v := range variants {
		bp, err := storage.NewBufferPoolBytes(budget, tmpDir())
		if err != nil {
			return out, err
		}
		m, err := ooc.FromDense(bp, x, v.opts)
		if err != nil {
			return out, err
		}
		bp.ResetStats()
		probe := &residencyProbe{Matrix: m, bp: bp}
		start := time.Now()
		res, err := opt.StreamingSGD(probe, y, opt.Logistic{}, cfg)
		elapsed := time.Since(start)
		if err != nil {
			return out, err
		}
		st := bp.Stats()
		out = append(out, e17Result{
			variant:     v.name,
			train:       elapsed,
			finalLoss:   res.History[len(res.History)-1],
			denseBytes:  denseBytes,
			pagedBytes:  m.PagedBytes(),
			budget:      budget,
			maxResident: probe.max,
			evictions:   st.Evictions,
			spillReads:  st.SpillReads,
		})
		if err := m.Drop(); err != nil {
			return out, err
		}
	}
	return out, nil
}

// E17OutOfCoreTraining reproduces the out-of-core training shape the paper's
// compressed-linear-algebra and buffer-management sections motivate: when the
// dataset is 4x the memory budget, naive dense paging re-reads every page
// every epoch, while CLA-compressed blocks fit the working set in budget (so
// steady-state epochs do no spill I/O at all) and operate-over-compressed
// kernels cut the per-block compute on top. The prefetch variant additionally
// overlaps pinning block N+1 with computing on block N — a wall-clock win
// wherever more than one core is available to hide the decode.
func E17OutOfCoreTraining(quick bool) (Table, error) {
	t := Table{
		ID:     "E17",
		Title:  "out-of-core logistic training on 4x-budget data: CLA block paging + prefetch vs dense page thrash",
		Header: []string{"variant", "time", "speedup", "final_loss", "paged_mb", "budget_mb", "max_resident_mb", "evictions", "spill_reads"},
	}
	results, err := e17Run(quick)
	if err != nil {
		return t, err
	}
	mb := func(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<20)) }
	base := results[0].train
	for _, r := range results {
		if r.maxResident > r.budget {
			return t, fmt.Errorf("experiments: E17: %s resident %d bytes exceeds the %d-byte budget", r.variant, r.maxResident, r.budget)
		}
		t.Rows = append(t.Rows, []string{
			r.variant, d(r.train), f(float64(base) / float64(r.train)), f(r.finalLoss),
			mb(r.pagedBytes), mb(r.budget), mb(r.maxResident),
			fmt.Sprint(r.evictions), fmt.Sprint(r.spillReads),
		})
	}
	t.Notes = "same optimizer and data; raw pages thrash (every epoch re-reads every block from spill), compressed blocks fit in budget after the first pass and multiply the matvec speed, prefetch hides pin+decode latency behind compute on multi-core hosts"
	return t, nil
}
