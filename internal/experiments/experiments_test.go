package experiments

import (
	"math"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// Integration smoke: every experiment runs at quick scale and produces a
// well-formed table.
func TestAllExperimentsRun(t *testing.T) {
	tables, err := All(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 20 {
		t.Fatalf("got %d tables", len(tables))
	}
	seen := map[string]bool{}
	for _, tbl := range tables {
		if tbl.ID == "" || tbl.Title == "" {
			t.Fatalf("table missing metadata: %+v", tbl)
		}
		if seen[tbl.ID] {
			t.Fatalf("duplicate table id %s", tbl.ID)
		}
		seen[tbl.ID] = true
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s has no rows", tbl.ID)
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Header) {
				t.Fatalf("%s row width %d != header %d", tbl.ID, len(row), len(tbl.Header))
			}
		}
		if !strings.Contains(tbl.String(), tbl.ID) {
			t.Fatalf("%s renders without its id", tbl.ID)
		}
	}
}

func cell(tbl Table, row int, col string) string {
	for i, h := range tbl.Header {
		if h == col {
			return tbl.Rows[row][i]
		}
	}
	return ""
}

func cellFloat(t *testing.T, tbl Table, row int, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(tbl, row, col), 64)
	if err != nil {
		t.Fatalf("%s row %d col %s: %v", tbl.ID, row, col, err)
	}
	return v
}

// Shape check: E1's measured factorized speedup must grow with tuple ratio
// and exceed 1 at the top of the sweep.
func TestE1SpeedupGrowsWithTupleRatio(t *testing.T) {
	tbl, err := E1FactorizedVsMaterialized(true)
	if err != nil {
		t.Fatal(err)
	}
	lastRow := len(tbl.Rows) - 1
	if sp := cellFloat(t, tbl, lastRow, "speedup"); sp <= 1.2 {
		t.Fatalf("speedup at TR=50 is %v, want > 1.2", sp)
	}
	if pred := cellFloat(t, tbl, lastRow, "predicted"); pred <= 1.5 {
		t.Fatalf("predicted speedup at TR=50 is %v", pred)
	}
}

// Shape check: Hamlet's safe-to-avoid scenario shows a near-zero accuracy
// gap, the keep-the-join scenario a positive one.
func TestE2GapShapes(t *testing.T) {
	tbl, err := E2HamletRule(true)
	if err != nil {
		t.Fatal(err)
	}
	if cell(tbl, 0, "rule_says") != "avoid" {
		t.Fatalf("row 0 verdict = %s", cell(tbl, 0, "rule_says"))
	}
	if gap := cellFloat(t, tbl, 0, "gap"); gap > 0.05 || gap < -0.05 {
		t.Fatalf("safe-to-avoid gap = %v", gap)
	}
	lastRow := len(tbl.Rows) - 1
	if cell(tbl, lastRow, "rule_says") != "keep" {
		t.Fatalf("last verdict = %s", cell(tbl, lastRow, "rule_says"))
	}
	if gap := cellFloat(t, tbl, lastRow, "gap"); gap < 0.03 {
		t.Fatalf("join-needed gap = %v, want clearly positive", gap)
	}
}

// Shape check: compression ratio of low-cardinality columns far exceeds the
// continuous column's.
func TestE3RatioShapes(t *testing.T) {
	tbl, err := E3CompressionRatio(true)
	if err != nil {
		t.Fatal(err)
	}
	var lowCardRatio, contRatio float64
	for i := range tbl.Rows {
		switch {
		case cell(tbl, i, "column") == "zipf" && cell(tbl, i, "cardinality") == "4":
			lowCardRatio = cellFloat(t, tbl, i, "ratio")
		case cell(tbl, i, "column") == "continuous":
			contRatio = cellFloat(t, tbl, i, "ratio")
		}
	}
	if lowCardRatio < 4 {
		t.Fatalf("low-card ratio = %v", lowCardRatio)
	}
	if contRatio > 1.05 {
		t.Fatalf("continuous ratio = %v, want ≈ 1", contRatio)
	}
}

// Shape check: successive halving uses far fewer epochs than grid while
// matching its best score within a small margin.
func TestE7SearchShapes(t *testing.T) {
	tbl, err := E7ModelSearch(true)
	if err != nil {
		t.Fatal(err)
	}
	gridEpochs := cellFloat(t, tbl, 0, "total_epochs")
	shEpochs := cellFloat(t, tbl, 2, "total_epochs")
	if shEpochs >= gridEpochs/2 {
		t.Fatalf("SH epochs %v not ≪ grid %v", shEpochs, gridEpochs)
	}
	gridAcc := cellFloat(t, tbl, 0, "best_val_acc")
	shAcc := cellFloat(t, tbl, 2, "best_val_acc")
	// Batched grid matches plain grid's best score while sharing scans.
	if batchedAcc := cellFloat(t, tbl, 1, "best_val_acc"); math.Abs(batchedAcc-gridAcc) > 0.05 {
		t.Fatalf("batched grid acc %v far from grid %v", batchedAcc, gridAcc)
	}
	if shAcc < gridAcc-0.05 {
		t.Fatalf("SH best acc %v far below grid %v", shAcc, gridAcc)
	}
}

// Shape check: Columbus reuse answers all subsets in exactly one data pass.
func TestE8ReuseShapes(t *testing.T) {
	tbl, err := E8ColumbusReuse(true)
	if err != nil {
		t.Fatal(err)
	}
	if passes := cell(tbl, 1, "data_passes"); passes != "1" {
		t.Fatalf("reuse passes = %s", passes)
	}
	if delta := cellFloat(t, tbl, 1, "max_mse_delta"); delta > 1e-6 {
		t.Fatalf("reuse changed models: delta %v", delta)
	}
}

// Shape check: E12 shared-gram CV performs k+1 passes vs k·|λ| for naive,
// and both pick the same λ.
func TestE12PassShapes(t *testing.T) {
	tbl, err := E12ReuseAcrossCV(true)
	if err != nil {
		t.Fatal(err)
	}
	if cell(tbl, 0, "data_passes") != "40" || cell(tbl, 1, "data_passes") != "6" {
		t.Fatalf("passes = %s vs %s", cell(tbl, 0, "data_passes"), cell(tbl, 1, "data_passes"))
	}
	if cell(tbl, 0, "best_lambda") != cell(tbl, 1, "best_lambda") {
		t.Fatal("strategies selected different lambdas")
	}
}

// Shape check: the planner's chosen plan is competitive with the forced
// alternative in both crossover regimes.
func TestE13PlannerCorrect(t *testing.T) {
	tbl, err := E13PlannerChoice(true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Rows {
		if cell(tbl, i, "correct") != "true" {
			t.Fatalf("planner row %d incorrect: %v", i, tbl.Rows[i])
		}
	}
	if !strings.HasPrefix(cell(tbl, 0, "chosen_plan"), "factorized") {
		t.Fatalf("TR=100 chose %s", cell(tbl, 0, "chosen_plan"))
	}
	if !strings.HasPrefix(cell(tbl, 1, "chosen_plan"), "materialized") {
		t.Fatalf("TR=0.2 chose %s", cell(tbl, 1, "chosen_plan"))
	}
}

// Shape check: pruning cuts k-means distance evaluations while preserving
// the objective value.
func TestAblationPruningShapes(t *testing.T) {
	tbl, err := EKMeansPruning(true)
	if err != nil {
		t.Fatal(err)
	}
	plain := cellFloat(t, tbl, 0, "dist_evals")
	pruned := cellFloat(t, tbl, 1, "dist_evals")
	if pruned >= plain {
		t.Fatalf("pruning did not cut evals: %v vs %v", pruned, plain)
	}
	iPlain := cellFloat(t, tbl, 0, "inertia")
	iPruned := cellFloat(t, tbl, 1, "inertia")
	ratio := iPruned / iPlain
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("pruning changed inertia: %v vs %v", iPruned, iPlain)
	}
}

// Shape check: co-coding merges the three correlated pairs into three
// groups, improves the ratio, and preserves results.
func TestAblationCoCodingShapes(t *testing.T) {
	tbl, err := EColumnCoCoding(true)
	if err != nil {
		t.Fatal(err)
	}
	if cell(tbl, 0, "groups") != "6" || cell(tbl, 1, "groups") != "3" {
		t.Fatalf("groups = %s vs %s", cell(tbl, 0, "groups"), cell(tbl, 1, "groups"))
	}
	if cellFloat(t, tbl, 1, "ratio") <= cellFloat(t, tbl, 0, "ratio") {
		t.Fatal("co-coding did not improve the ratio")
	}
	if cellFloat(t, tbl, 1, "result_delta") > 1e-9 {
		t.Fatal("co-coding changed results")
	}
}

// Shape check: E14's faulted runs must actually exercise the recovery
// machinery (retries > 0, exactly the injected kill recovered) and still
// land within 5% of the fault-free final loss, for every coordination mode.
func TestE14FaultToleranceShapes(t *testing.T) {
	tbl, err := E14FaultTolerance(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 modes × faults off/on)", len(tbl.Rows))
	}
	for r := 0; r < len(tbl.Rows); r += 2 {
		mode := cell(tbl, r, "mode")
		if cell(tbl, r, "faults") != "off" || cell(tbl, r+1, "faults") != "on" {
			t.Fatalf("row pair %d not (off, on): %v", r, tbl.Rows)
		}
		if cellFloat(t, tbl, r, "retries") != 0 || cellFloat(t, tbl, r, "recoveries") != 0 {
			t.Fatalf("%s: fault-free run recorded fault activity", mode)
		}
		if cellFloat(t, tbl, r+1, "retries") == 0 {
			t.Fatalf("%s: no retries under 5%% request loss", mode)
		}
		if cellFloat(t, tbl, r+1, "recoveries") < 1 {
			t.Fatalf("%s: injected kill was not recovered", mode)
		}
		clean := cellFloat(t, tbl, r, "final_loss")
		faulty := cellFloat(t, tbl, r+1, "final_loss")
		if math.Abs(faulty-clean) > 0.05*clean {
			t.Fatalf("%s: faulty loss %v vs fault-free %v (beyond 5%%)", mode, faulty, clean)
		}
	}
}

// Shape check: fusion must cut intermediate cell allocation by at least 3x
// overall and on every single-expression template row, without fused
// evaluation being slower than a sanity bound.
func TestE15FusionShapes(t *testing.T) {
	tbl, err := E15Fusion(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tbl.Rows))
	}
	var un, fu float64
	for i := range tbl.Rows {
		un += cellFloat(t, tbl, i, "cells_unfused")
		fu += cellFloat(t, tbl, i, "cells_fused")
	}
	if un < 3*fu {
		t.Fatalf("fusion saved only %.2fx cells overall (%v vs %v)", un/fu, un, fu)
	}
	// The four single-expression template rows each save ≥3x on their own
	// (a fully-fused aggregate allocates zero cells; that row trivially passes).
	for i := 0; i < 4; i++ {
		unI := cellFloat(t, tbl, i, "cells_unfused")
		fuI := cellFloat(t, tbl, i, "cells_fused")
		if fuI > 0 && unI < 3*fuI {
			t.Fatalf("row %d (%s): fusion saved only %.2fx cells", i, tbl.Rows[i][0], unI/fuI)
		}
	}
}

// Shape check: the compiled-fusion A/B runs every region compiled on the
// compiled side (the experiment itself errors if not) and produces sane
// speedup numbers — positive, finite, and parsed from every row.
func TestE16CompiledFusionShapes(t *testing.T) {
	tbl, err := E16CompiledFusion(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		if sp := cellFloat(t, tbl, i, "speedup"); sp <= 0 || math.IsInf(sp, 0) || math.IsNaN(sp) {
			t.Fatalf("row %d (%s): speedup %v", i, tbl.Rows[i][0], sp)
		}
		regions := cellFloat(t, tbl, i, "regions")
		compiled := cellFloat(t, tbl, i, "compiled")
		if regions < 1 || compiled != regions {
			t.Fatalf("row %d (%s): regions=%v compiled=%v", i, tbl.Rows[i][0], regions, compiled)
		}
	}
}

// TestE17OutOfCoreInvariants pins the out-of-core training datapath claims on
// the structured results: the data really is 4x the budget, resident block
// memory never exceeds the budget on any variant, the raw-page baseline
// really thrashes (spill reads every epoch), compression shrinks the paged
// footprint enough that the working set fits in budget, and the compressed
// datapath beats the raw page-thrash wall clock by at least 1.5x. The
// prefetch-vs-no-prefetch wall-clock win needs a second core to hide decode
// latency behind compute, so that ratio is only pinned on multi-core hosts.
//
// The structural invariants must hold on every run. The wall-clock ratios
// get up to three attempts before the test concludes the speedup is gone:
// a shared CI host can steal tens of milliseconds from any single run, which
// is the same order as the quick-scale training times being compared.
func TestE17OutOfCoreInvariants(t *testing.T) {
	const attempts = 3
	for attempt := 1; ; attempt++ {
		results, err := e17Run(true)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 3 {
			t.Fatalf("variants = %d, want 3", len(results))
		}
		byName := map[string]e17Result{}
		for _, r := range results {
			byName[r.variant] = r
			if r.denseBytes < 4*r.budget {
				t.Fatalf("%s: dense %d bytes is under 4x the %d-byte budget", r.variant, r.denseBytes, r.budget)
			}
			if r.maxResident > r.budget {
				t.Fatalf("%s: resident %d bytes exceeds the %d-byte budget", r.variant, r.maxResident, r.budget)
			}
			if r.maxResident == 0 {
				t.Fatalf("%s: residency probe never sampled", r.variant)
			}
			if r.finalLoss <= 0 || math.IsNaN(r.finalLoss) || r.finalLoss > math.Log(2) {
				t.Fatalf("%s: final loss %v did not improve on the w=0 loss ln2", r.variant, r.finalLoss)
			}
		}
		thrash, cla, pre := byName["raw-thrash"], byName["cla"], byName["cla+prefetch"]
		// The raw baseline cannot fit 4x-budget pages: it must evict and re-read.
		if thrash.evictions == 0 || thrash.spillReads == 0 {
			t.Fatalf("raw-thrash did not thrash: evictions=%d spillReads=%d", thrash.evictions, thrash.spillReads)
		}
		// CLA shrinks the paged footprint at least 2x on quantized telemetry.
		if ratio := float64(cla.denseBytes) / float64(cla.pagedBytes); ratio < 2 {
			t.Fatalf("compression ratio %.2f < 2 (paged %d of dense %d)", ratio, cla.pagedBytes, cla.denseBytes)
		}
		// Wall clock: compressed paging beats raw page thrash by a wide margin.
		// Skipped under the race detector, whose instrumentation slows the
		// compute-bound compressed path far more than the I/O-bound thrash
		// path; the structural invariants above still ran.
		if raceEnabled {
			return
		}
		claOK := float64(thrash.train)/float64(cla.train) >= 1.5
		preOK := true
		if runtime.NumCPU() > 1 && runtime.GOMAXPROCS(0) > 1 {
			preOK = float64(cla.train)/float64(pre.train) >= 1.5
		}
		if claOK && preOK {
			return
		}
		if attempt == attempts {
			if !claOK {
				t.Fatalf("cla speedup over raw-thrash %.2fx < 1.5x (%v vs %v)",
					float64(thrash.train)/float64(cla.train), cla.train, thrash.train)
			}
			t.Fatalf("prefetch speedup %.2fx < 1.5x (%v vs %v)",
				float64(cla.train)/float64(pre.train), pre.train, cla.train)
		}
		t.Logf("attempt %d: wall-clock pin missed (cla ok=%v prefetch ok=%v), retrying", attempt, claOK, preOK)
	}
}

// TestE18FactorizedSnowflakeInvariants pins the join-tree engine's claims at
// full scale: both solvers land on the same model factorized as
// materialized (identical optimizer config — any delta is floating-point
// reassociation), the cost model predicts a clear factorized win on this
// shape, and the measured steady-state GD iteration over the snowflake is at
// least 3x faster factorized than over the materialized join — the E18
// acceptance floor.
//
// The structural invariants must hold on every run; the wall-clock ratio
// gets up to three attempts, and is skipped under the race detector.
func TestE18FactorizedSnowflakeInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale wall-clock pin")
	}
	const attempts = 3
	for attempt := 1; ; attempt++ {
		results, width, err := e18Run(false)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 4 || width != 78 {
			t.Fatalf("got %d variants, width %d; want 4 variants of width 78", len(results), width)
		}
		byName := map[string]e18Result{}
		for _, r := range results {
			byName[r.variant] = r
			if math.IsNaN(r.finalLoss) || r.finalLoss < 0 {
				t.Fatalf("%s: final loss %v", r.variant, r.finalLoss)
			}
		}
		// Matched accuracy: identical config on both representations.
		for _, pair := range [][2]string{{"gd+factorized", "gd+materialized"}, {"ridge+factorized", "ridge+materialized"}} {
			fl, ml := byName[pair[0]].finalLoss, byName[pair[1]].finalLoss
			if diff := math.Abs(fl - ml); diff > 1e-6*(1+math.Abs(ml)) {
				t.Fatalf("%s loss %v vs %s loss %v", pair[0], fl, pair[1], ml)
			}
		}
		// The model must predict a clear win on this shape before wall clock
		// is consulted at all.
		if pred := byName["gd+factorized"].predicted; pred < 3 {
			t.Fatalf("predicted GD speedup %.2f < 3 on the snowflake shape", pred)
		}
		if pred := byName["ridge+factorized"].predicted; pred < 3 {
			t.Fatalf("predicted Gram speedup %.2f < 3 on the snowflake shape", pred)
		}
		if raceEnabled {
			return
		}
		sp := float64(byName["gd+materialized"].perIter) / float64(byName["gd+factorized"].perIter)
		if sp >= 3 {
			return
		}
		if attempt == attempts {
			t.Fatalf("factorized per-iteration speedup %.2fx < 3x (%v vs %v)",
				sp, byName["gd+factorized"].perIter, byName["gd+materialized"].perIter)
		}
		t.Logf("attempt %d: per-iteration speedup %.2fx < 3x, retrying", attempt, sp)
	}
}
