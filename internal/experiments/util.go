package experiments

import (
	"os"
	"path/filepath"

	"dmml/internal/compress"
	"dmml/internal/la"
)

// tmpDir returns a scratch directory for buffer-pool spills; experiments are
// harness-level code, so using the process temp dir is acceptable here.
func tmpDir() string {
	dir, err := os.MkdirTemp("", "dmml-bench-*")
	if err != nil {
		return os.TempDir()
	}
	return dir
}

// ckptPath returns a scratch path for a parameter-server checkpoint.
func ckptPath() string {
	return filepath.Join(tmpDir(), "model.ck")
}

// Thin aliases keep experiments2.go free of extra imports.
func laNewDense(rows, cols int) *la.Dense { return la.NewDense(rows, cols) }

func compressCompress(m *la.Dense, coCode bool) *compress.Matrix {
	return compress.Compress(m, compress.Options{CoCode: coCode})
}
