# Development targets.
#
#   make test           tier-1 gate: build everything, run every test
#   make check          static analysis + race detector over the concurrent
#                       packages (pool, la, compress, paramserver, storage,
#                       ooc, opt, metrics, dml, experiments, factorized,
#                       modeldb, sketch, serve)
#   make vet-engine     dmmlvet: the engine-specific analyzer suite (scratch
#                       pairing, span pairing, instrument registration,
#                       noalloc kernels, lock discipline) over every package;
#                       any finding fails the build
#   make ci             exactly what .github/workflows/ci.yml runs, in order —
#                       keep the two in lockstep so CI and local verification
#                       cannot drift
#   make fuzz-smoke     15s native-fuzzing passes over the DML fusion
#                       properties (fused vs unfused, compiled vs interpreted)
#                       and the serving wire protocol (decode/round-trip)
#   make serve-smoke    end-to-end inference-serving smoke: in-process
#                       dmmlserve + loadtest closed loop, fails below
#                       20k predictions/s or on any request error
#   make bench          benchstat-compatible timings for the perf-tracked
#                       experiments (E4, E5, E6, E10, E15, E16, E17, and the E14
#                       fault-injection scenario) — run before and after a kernel
#                       change and feed both logs to benchstat
#   make bench-guard    the non-blocking CI bench job: run E4/E5/E15/E16/E17 at
#                       full scale with -snapshot/-metrics and diff against the
#                       BENCH_baseline.json snapshot pins
#   make cover          the CI coverage job: per-package statement coverage over
#                       ./internal/... with an HTML report (coverage.html) and
#                       hard floors on the storage and compress packages
#   make fuzz-nightly   the nightly extended fuzzing pass: 5 minutes per fuzz
#                       target instead of fuzz-smoke's 15 seconds
#   make bench-guard-strict  nightly bench guard: same run as bench-guard but
#                       any regression past the warn threshold fails the build
#   make lint-examples  run the DML static analyzer over all shipped scripts

# Fail fast: every recipe line runs under `bash -eu -o pipefail`, so a
# failing command in a multi-line recipe (or mid-pipeline) stops the build
# instead of letting later lines mask its exit code.
SHELL := /bin/bash
.SHELLFLAGS := -eu -o pipefail -c

GO ?= go
BENCH_COUNT ?= 6

# Packages with real concurrency — the ones worth the race detector's 10x
# slowdown. metrics is lock-striped and must stay race-clean; ooc runs the
# async block prefetcher against the buffer pool; dml drives the
# parallel fused templates, experiments and factorized fan work out through
# the pool, modeldb and sketch are exercised concurrently by the serving and
# streaming paths.
RACE_PKGS := ./internal/pool/... ./internal/la/... ./internal/compress/... \
	./internal/paramserver/... ./internal/storage/... ./internal/ooc/... \
	./internal/opt/... \
	./internal/metrics/... ./internal/dml/... ./internal/experiments/... \
	./internal/factorized/... ./internal/modeldb/... ./internal/sketch/... \
	./internal/serve/...

.PHONY: test check ci vet vet-engine race bench bench-guard bench-guard-strict \
	cover fuzz-nightly lint-examples fuzz-smoke serve-smoke

test:
	$(GO) build ./...
	$(GO) test ./...

check: vet vet-engine race

# Mirror of the blocking CI jobs (build-test, vet, vet-engine, race,
# fuzz-smoke, serve-smoke, lint-examples).
ci: test vet vet-engine race fuzz-smoke serve-smoke lint-examples

vet:
	$(GO) vet ./...

# The engine-specific static-analysis suite (cmd/dmmlvet): proves the
# resource invariants — scratch-buffer pairing, span/stopwatch pairing,
# instrument registration discipline, //dmml:noalloc kernels, lock
# discipline — at compile time. Exits non-zero on any finding.
vet-engine:
	$(GO) run ./cmd/dmmlvet ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkE(4CompressedMV|5Rewrites|6BismarckParallel|10SparseVsDense|14FaultTolerance|15Fusion|16CompiledFusion|17OutOfCoreTraining|18FactorizedSnowflake)$$' \
		-benchmem -count=$(BENCH_COUNT) .

# Short native-fuzzing smoke over the fusion equivalence property: random
# expression trees, fused evaluation must match unfused bit-for-bit on cell
# templates and to relative 1e-8 on reassociated reductions.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzFusionSemantics$$' -fuzztime 15s ./internal/dml
	$(GO) test -run '^$$' -fuzz 'FuzzCompiledFusionSemantics$$' -fuzztime 15s ./internal/dml
	$(GO) test -run '^$$' -fuzz 'FuzzServeProtocol$$' -fuzztime 15s ./internal/serve
	$(GO) test -run '^$$' -fuzz 'FuzzFactorizedGram$$' -fuzztime 15s ./internal/factorized

# End-to-end serving smoke: loadtest starts dmmlserve in-process with the
# demo models and drives a closed loop; fails on any request error or if
# throughput drops below the 20k predictions/s acceptance floor.
serve-smoke:
	$(GO) run ./cmd/loadtest -selfserve -conns 8 -duration 2s -min-qps 20000

bench-guard:
	$(GO) run ./cmd/dmmlbench -exp E4,E5,E15,E16,E17,E18 -snapshot bench_current.json -metrics metrics_current.json
	$(GO) run ./cmd/benchguard -baseline BENCH_baseline.json -current bench_current.json -metrics metrics_current.json

# Nightly variant: identical measurement, but a regression past the warn
# threshold fails the job instead of just warning.
bench-guard-strict:
	$(GO) run ./cmd/dmmlbench -exp E4,E5,E15,E16,E17,E18 -snapshot bench_current.json -metrics metrics_current.json
	$(GO) run ./cmd/benchguard -strict -baseline BENCH_baseline.json -current bench_current.json -metrics metrics_current.json

# Per-package statement coverage with an HTML report, plus hard floors on the
# packages that own the out-of-core datapath's correctness — the buffer pool
# (storage) and the page codec (compress) — and on the join-tree pushdown
# engine (factorized). The floor check parses go test's
# own per-package coverage lines, so it cannot drift from the profile.
COVER_FLOOR_STORAGE ?= 85
COVER_FLOOR_COMPRESS ?= 82
COVER_FLOOR_FACTORIZED ?= 80

cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./internal/... | tee coverage.txt
	$(GO) tool cover -html=coverage.out -o coverage.html
	@check() { \
		pct=$$(awk -v pkg="dmml/internal/$$1" '$$2 == pkg { for (i = 1; i <= NF; i++) if ($$i ~ /%$$/) { sub(/%.*/, "", $$i); print $$i; exit } }' coverage.txt); \
		if [ -z "$$pct" ]; then echo "cover: no coverage line for internal/$$1" >&2; exit 1; fi; \
		if awk -v p="$$pct" -v f="$$2" 'BEGIN { exit !(p < f) }'; then \
			echo "cover: internal/$$1 coverage $$pct% is below the $$2% floor" >&2; exit 1; \
		fi; \
		echo "cover: internal/$$1 $$pct% (floor $$2%)"; \
	}; \
	check storage $(COVER_FLOOR_STORAGE); \
	check compress $(COVER_FLOOR_COMPRESS); \
	check factorized $(COVER_FLOOR_FACTORIZED)

# Nightly extended fuzzing: the same three properties fuzz-smoke touches for
# 15s each get 5 minutes each.
FUZZ_NIGHTLY_TIME ?= 5m

fuzz-nightly:
	$(GO) test -run '^$$' -fuzz 'FuzzFusionSemantics$$' -fuzztime $(FUZZ_NIGHTLY_TIME) ./internal/dml
	$(GO) test -run '^$$' -fuzz 'FuzzCompiledFusionSemantics$$' -fuzztime $(FUZZ_NIGHTLY_TIME) ./internal/dml
	$(GO) test -run '^$$' -fuzz 'FuzzServeProtocol$$' -fuzztime $(FUZZ_NIGHTLY_TIME) ./internal/serve
	$(GO) test -run '^$$' -fuzz 'FuzzFactorizedGram$$' -fuzztime $(FUZZ_NIGHTLY_TIME) ./internal/factorized

lint-examples:
	$(GO) run ./cmd/dmml lint -strict examples/dml_script/scripts/*.dml
