# Development targets.
#
#   make test           tier-1 gate: build everything, run every test
#   make check          static analysis + race detector over the concurrent
#                       packages (paramserver, storage, opt)
#   make lint-examples  run the DML static analyzer over all shipped scripts

GO ?= go

.PHONY: test check vet race lint-examples

test:
	$(GO) build ./...
	$(GO) test ./...

check: vet race

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/paramserver/... ./internal/storage/... ./internal/opt/...

lint-examples:
	$(GO) run ./cmd/dmml lint -strict examples/dml_script/scripts/*.dml
