# Development targets.
#
#   make test           tier-1 gate: build everything, run every test
#   make check          static analysis + race detector over the concurrent
#                       packages (pool, la, compress, paramserver, storage, opt)
#   make bench          benchstat-compatible timings for the perf-tracked
#                       experiments (E4, E5, E6, E10, and the E14 fault-
#                       injection scenario) — run before and after a kernel
#                       change and feed both logs to benchstat
#   make lint-examples  run the DML static analyzer over all shipped scripts

GO ?= go
BENCH_COUNT ?= 6

.PHONY: test check vet race bench lint-examples

test:
	$(GO) build ./...
	$(GO) test ./...

check: vet race

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/pool/... ./internal/la/... ./internal/compress/... \
		./internal/paramserver/... ./internal/storage/... ./internal/opt/...

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkE(4CompressedMV|5Rewrites|6BismarckParallel|10SparseVsDense|14FaultTolerance)$$' \
		-benchmem -count=$(BENCH_COUNT) .

lint-examples:
	$(GO) run ./cmd/dmml lint -strict examples/dml_script/scripts/*.dml
