// Command benchguard compares a dmmlbench -snapshot run against a baseline
// and warns about wall-time regressions. The CI bench-guard job runs it
// non-blocking on every push: regressions print loud warnings (and GitHub
// ::warning:: annotations) without failing the build, because shared CI
// runners are too noisy for a hard gate.
//
// Usage:
//
//	benchguard -baseline BENCH_baseline.json -current bench_current.json
//	benchguard ... -warn-pct 15          # warning threshold (default 15%)
//	benchguard ... -strict               # exit 1 on regression (local use)
//	benchguard ... -metrics metrics.json # validate + summarize a -metrics dump
//
// The baseline may be either another dmmlbench -snapshot array
// ([{"id":"E4","ms":...}]) or the repo's BENCH_baseline.json pin file, whose
// per-benchmark post.ns_op samples are reduced to a median and mapped to
// experiment ids (BenchmarkE4CompressedMV -> E4). Experiments present on
// only one side are reported and skipped.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"

	"dmml/internal/metrics"
)

type snapshotEntry struct {
	ID string  `json:"id"`
	Ms float64 `json:"ms"`
}

// pinFile is the shape of BENCH_baseline.json: benchstat-style pinned
// samples per benchmark plus an optional whole-experiment snapshot section,
// keeping only what the guard needs.
type pinFile struct {
	// Snapshot holds dmmlbench -snapshot wall times pinned on the baseline
	// machine — the like-for-like comparison for a -snapshot current run.
	Snapshot   []snapshotEntry `json:"snapshot"`
	Benchmarks map[string]struct {
		Post struct {
			NsOp []float64 `json:"ns_op"`
		} `json:"post"`
	} `json:"benchmarks"`
}

var benchIDRe = regexp.MustCompile(`^BenchmarkE(\d+)`)

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline: a -snapshot array or the BENCH_baseline.json pin file")
	currentPath := flag.String("current", "", "current run: a dmmlbench -snapshot JSON file (required)")
	metricsPath := flag.String("metrics", "", "optional dmmlbench -metrics dump to validate and summarize")
	warnPct := flag.Float64("warn-pct", 15, "warn when an experiment slows down by more than this percent")
	strict := flag.Bool("strict", false, "exit non-zero when any experiment regresses past -warn-pct")
	flag.Parse()

	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -current is required")
		os.Exit(2)
	}
	current, err := loadSnapshot(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	baseline, err := loadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}

	regressed := 0
	fmt.Printf("%-8s %12s %12s %9s\n", "exp", "baseline", "current", "delta")
	for _, cur := range current {
		base, ok := baseline[cur.ID]
		if !ok {
			fmt.Printf("%-8s %12s %12.1fms %9s\n", cur.ID, "(none)", cur.Ms, "-")
			continue
		}
		delta := 100 * (cur.Ms - base) / base
		fmt.Printf("%-8s %10.1fms %10.1fms %+8.1f%%\n", cur.ID, base, cur.Ms, delta)
		if delta > *warnPct {
			regressed++
			// ::warning:: surfaces as an annotation in GitHub Actions and
			// is inert everywhere else.
			fmt.Printf("::warning title=bench regression::%s is %.1f%% slower than baseline (%.1fms -> %.1fms)\n",
				cur.ID, delta, base, cur.Ms)
		}
	}

	if *metricsPath != "" {
		if err := summarizeMetrics(*metricsPath); err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
	}

	if regressed > 0 {
		fmt.Printf("benchguard: %d experiment(s) regressed past %.0f%%\n", regressed, *warnPct)
		if *strict {
			os.Exit(1)
		}
	} else {
		fmt.Println("benchguard: no regressions past threshold")
	}
}

func loadSnapshot(path string) ([]snapshotEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []snapshotEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return entries, nil
}

// loadBaseline accepts either snapshot or pin-file JSON and returns ms by
// experiment id.
func loadBaseline(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	var entries []snapshotEntry
	if err := json.Unmarshal(data, &entries); err == nil {
		for _, e := range entries {
			out[e.ID] = e.Ms
		}
		return out, nil
	}
	var pins pinFile
	if err := json.Unmarshal(data, &pins); err != nil || (len(pins.Benchmarks) == 0 && len(pins.Snapshot) == 0) {
		return nil, fmt.Errorf("%s: neither a snapshot array nor a baseline pin file", path)
	}
	// Prefer the experiment-level snapshot pins: dmmlbench wall times cover
	// a whole experiment (many sizes/trials), while a benchmark's ns_op is
	// one iteration — only the former compares like for like.
	if len(pins.Snapshot) > 0 {
		for _, e := range pins.Snapshot {
			out[e.ID] = e.Ms
		}
		return out, nil
	}
	for name, b := range pins.Benchmarks {
		m := benchIDRe.FindStringSubmatch(name)
		if m == nil || len(b.Post.NsOp) == 0 {
			continue
		}
		out["E"+m[1]] = median(b.Post.NsOp) / 1e6
	}
	return out, nil
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// summarizeMetrics decodes a dmmlbench -metrics dump (failing loudly on
// malformed JSON — this is the CI check that the dump stays consumable)
// and prints the headline engine counters.
func summarizeMetrics(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("%s: invalid metrics dump: %w", path, err)
	}
	fmt.Printf("metrics dump: %d counters, %d gauges, %d timers\n",
		len(snap.Counters), len(snap.Gauges), len(snap.Timers))
	for _, c := range snap.Counters {
		switch c.Name {
		case "la.flops", "pool.chunks.claimed", "ps.rpcs", "storage.bufferpool.misses":
			fmt.Printf("  %-28s %d\n", c.Name, c.Value)
		}
	}
	for _, g := range snap.Gauges {
		if g.Name == "compress.ratio" {
			fmt.Printf("  %-28s %.2f\n", g.Name, g.Value)
		}
	}
	return nil
}
