// Command loadtest drives a dmmlserve instance and reports throughput and
// client-observed latency quantiles (p50/p99/p999 via the metrics
// histogram Quantile estimator).
//
// Two load shapes:
//
//	-mode closed   each connection keeps -pipeline requests in flight and
//	               sends the next as each response lands (throughput probe)
//	-mode open     each connection sends at a fixed rate (-rate is the
//	               total target QPS) regardless of responses (latency probe)
//
// With -selfserve it starts the server in-process on 127.0.0.1:0 with the
// demo models — the one-command smoke test used by `make serve-smoke`:
//
//	loadtest -selfserve -conns 8 -duration 2s -min-qps 20000
//
// Exit status is non-zero if any request fails or the measured QPS falls
// below -min-qps.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dmml/internal/metrics"
	"dmml/internal/modeldb"
	"dmml/internal/serve"
)

var (
	hLat    = metrics.NewHistogram("loadtest.latency.us")
	nOK     atomic.Int64
	nErr    atomic.Int64
	errOnce sync.Once
)

func fail(format string, args ...any) {
	nErr.Add(1)
	errOnce.Do(func() { log.Printf("loadtest: first error: "+format, args...) })
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "dmmlserve address")
	model := flag.String("model", serve.DemoChurnModel, "model name to score")
	dim := flag.Int("dim", serve.DemoChurnDim, "feature dimension of -model")
	conns := flag.Int("conns", 4, "concurrent connections")
	duration := flag.Duration("duration", 3*time.Second, "load duration")
	mode := flag.String("mode", "closed", "load shape: closed or open")
	pipeline := flag.Int("pipeline", 16, "closed loop: in-flight requests per connection")
	rate := flag.Float64("rate", 10000, "open loop: total target requests/sec")
	selfserve := flag.Bool("selfserve", false, "start an in-process demo server on 127.0.0.1:0")
	minQPS := flag.Float64("min-qps", 0, "fail if measured QPS is below this")
	maxBatch := flag.Int("max-batch", 256, "selfserve: max rows per kernel call")
	linger := flag.Duration("linger", 0, "selfserve: fixed coalescing window")
	flag.Parse()

	metrics.Enable()

	target := *addr
	if *selfserve {
		store := modeldb.NewStore()
		if err := serve.LogDemoModels(store); err != nil {
			log.Fatalf("loadtest: %v", err)
		}
		s, err := serve.New(serve.Config{
			Addr: "127.0.0.1:0", Store: store, MaxBatch: *maxBatch, Linger: *linger,
		})
		if err != nil {
			log.Fatalf("loadtest: %v", err)
		}
		go s.Serve()
		defer s.Shutdown()
		target = s.Addr().String()
		log.Printf("loadtest: self-serving demo models on %s", target)
	}

	row := make([]float64, *dim)
	for i := range row {
		row[i] = float64(i%7) * 0.25
	}

	var wg sync.WaitGroup
	start := time.Now()
	end := start.Add(*duration)
	for g := 0; g < *conns; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch *mode {
			case "closed":
				closedLoop(target, *model, row, *pipeline, end)
			case "open":
				openLoop(target, *model, row, *rate / float64(*conns), end)
			default:
				log.Fatalf("loadtest: unknown -mode %q", *mode)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	ok, errs := nOK.Load(), nErr.Load()
	qps := float64(ok) / elapsed.Seconds()
	snap := hLat.Snapshot()
	fmt.Printf("loadtest: mode=%s conns=%d model=%s dim=%d duration=%s\n",
		*mode, *conns, *model, *dim, elapsed.Round(time.Millisecond))
	fmt.Printf("  %d ok, %d errors, %.0f qps\n", ok, errs, qps)
	fmt.Printf("  latency: p50=%s p99=%s p999=%s max=%s\n",
		us(snap.Quantile(0.50)), us(snap.Quantile(0.99)),
		us(snap.Quantile(0.999)), us(float64(snap.Max)))

	if errs > 0 {
		log.Printf("loadtest: FAIL: %d errors", errs)
		os.Exit(1)
	}
	if *minQPS > 0 && qps < *minQPS {
		log.Printf("loadtest: FAIL: %.0f qps < required %.0f", qps, *minQPS)
		os.Exit(1)
	}
}

func us(v float64) time.Duration {
	return (time.Duration(v) * time.Microsecond).Round(time.Microsecond)
}

func observe(resp serve.Response, start time.Time) {
	hLat.Observe(time.Since(start).Microseconds())
	if resp.Status != serve.StatusOK {
		fail("status 0x%02x: %s", resp.Status, resp.Msg)
		return
	}
	nOK.Add(1)
}

// closedLoop keeps depth requests in flight on one connection: prime the
// window, then send one more as each response arrives. Stops issuing at
// end and drains the window.
func closedLoop(addr, model string, row []float64, depth int, end time.Time) {
	c, err := serve.Dial(addr, 5*time.Second)
	if err != nil {
		fail("dial: %v", err)
		return
	}
	defer c.Close()
	starts := make(map[uint64]time.Time, depth)
	send := func() bool {
		id, err := c.Send(model, row)
		if err != nil {
			fail("send: %v", err)
			return false
		}
		starts[id] = time.Now()
		return true
	}
	for i := 0; i < depth; i++ {
		if !send() {
			return
		}
	}
	if err := c.Flush(); err != nil {
		fail("flush: %v", err)
		return
	}
	for len(starts) > 0 {
		resp, err := c.Recv()
		if err != nil {
			fail("recv: %v", err)
			return
		}
		t0, seen := starts[resp.ID]
		if !seen {
			fail("unknown response id %d", resp.ID)
			return
		}
		delete(starts, resp.ID)
		observe(resp, t0)
		if time.Now().Before(end) {
			if !send() {
				return
			}
			if err := c.Flush(); err != nil {
				fail("flush: %v", err)
				return
			}
		}
	}
}

// openLoop sends at a fixed per-connection rate while a separate receiver
// goroutine drains responses — latency under a load the server does not
// control. Client supports exactly this split (one sender, one receiver).
func openLoop(addr, model string, row []float64, rate float64, end time.Time) {
	if rate <= 0 {
		fail("open loop needs -rate > 0")
		return
	}
	c, err := serve.Dial(addr, 5*time.Second)
	if err != nil {
		fail("dial: %v", err)
		return
	}
	defer c.Close()

	var mu sync.Mutex
	starts := make(map[uint64]time.Time)
	// One token per sent request: the receiver does exactly one Recv per
	// token (the server answers every admitted request), so it can never
	// block on a response that is not coming, and exits when the channel
	// closes after the last send.
	tokens := make(chan struct{}, 1<<16)

	go func() {
		defer close(tokens)
		// Pace against an ideal schedule and catch up in bursts: coarse
		// timer wakeups (~1ms on Linux) would otherwise silently cap the
		// achieved rate far below the target at sub-millisecond intervals.
		interval := max(time.Duration(float64(time.Second)/rate), time.Microsecond)
		next := time.Now()
		for {
			now := time.Now()
			if now.After(end) {
				return
			}
			for !next.After(now) {
				id, err := c.Send(model, row)
				if err != nil {
					fail("send: %v", err)
					return
				}
				mu.Lock()
				starts[id] = time.Now()
				mu.Unlock()
				tokens <- struct{}{}
				next = next.Add(interval)
			}
			if err := c.Flush(); err != nil {
				fail("flush: %v", err)
				return
			}
			time.Sleep(time.Until(next))
		}
	}()

	for range tokens {
		resp, err := c.Recv()
		if err != nil {
			fail("recv: %v", err)
			return
		}
		mu.Lock()
		t0, seen := starts[resp.ID]
		delete(starts, resp.ID)
		mu.Unlock()
		if !seen {
			fail("unknown response id %d", resp.ID)
			return
		}
		observe(resp, t0)
	}
}
