package main

import (
	"fmt"
	"io"
	"time"

	"dmml/internal/metrics"
)

// printOpStats renders the -stats heavy-hitter table: every engine timer
// that fired during the run (DML operators, la/compress kernels, parameter-
// server ops), ranked by self time, with each operator's share of the
// run's wall time. Modeled on SystemML's -stats output.
func printOpStats(w io.Writer, elapsed time.Duration, k int) {
	ops := metrics.Ops("")
	if len(ops) == 0 {
		fmt.Fprintln(w, "# -stats: no instrumented operators ran")
		return
	}
	fmt.Fprintf(w, "# -stats: operators by self time (run took %s)\n", elapsed.Round(time.Microsecond))
	fmt.Fprint(w, metrics.FormatOpsTable(ops, k, elapsed))
}
