package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dmml/internal/dml"
)

// runLint implements `dmml lint`: parse and statically analyze each script
// without executing it, printing diagnostics as "path:line:col: severity
// [code]: message". Variables a script reads but never assigns are treated as
// external inputs of unknown shape unless a -csv binding pins them down.
//
// Exit status: 0 when no script has errors (warnings allowed unless -strict),
// 1 when any script has diagnostics that fail the run, 2 on usage or I/O
// problems.
func runLint(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	strict := fs.Bool("strict", false, "treat warnings as failures")
	var csvs csvBindings
	fs.Var(&csvs, "csv", "bind a headerless numeric CSV as a matrix: name=path (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: dmml lint [-strict] [-csv name=path] script.dml ...")
		return 2
	}

	inputs := map[string]dml.Shape{}
	for _, bind := range csvs {
		name, path, _ := strings.Cut(bind, "=")
		m, err := loadMatrixCSV(path)
		if err != nil {
			fmt.Fprintf(stderr, "dmml: loading %s: %v\n", bind, err)
			return 2
		}
		inputs[name] = dml.ShapesFromEnv(dml.Env{name: dml.Matrix(m)})[name]
	}

	exit := 0
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "dmml: %v\n", err)
			return 2
		}
		prog, err := dml.Parse(string(data))
		if err != nil {
			// Parse errors come formatted "dml: line:col: msg"; re-anchor
			// them on the file path like the analyzer diagnostics below.
			fmt.Fprintf(stdout, "%s:%s\n", path, strings.TrimPrefix(err.Error(), "dml: "))
			exit = 1
			continue
		}
		a := prog.Lint(inputs)
		for _, d := range a.Diags {
			fmt.Fprintf(stdout, "%s:%s\n", path, d.Format(string(data)))
		}
		if a.HasErrors() || (*strict && len(a.Diags) > 0) {
			exit = 1
		}
	}
	return exit
}
