// Command dmml runs a declarative-ML (DML) script: an R-like matrix
// expression language — assignments, counted loops, conditionals — with a
// SystemML-style rewrite optimizer (matrix-chain reordering, aggregate
// fusion, loop-invariant code motion).
//
// Usage:
//
//	dmml script.dml                 # optimize and run a script file
//	dmml -e 'sum(eye(3))'           # evaluate an expression
//	dmml -explain script.dml        # print the optimized program, then run
//	dmml -no-opt script.dml         # skip the rewrite engine
//	dmml -csv name=path.csv ...     # bind numeric CSV files as matrices
//	dmml -stats script.dml          # print a per-operator time table
//	dmml -cpuprofile cpu.pprof ...  # write a pprof CPU profile
//	dmml -ooc-budget 64MB s.dml     # page big read() inputs out of core
//	dmml lint script.dml ...        # static analysis only; do not execute
//
// CSV bindings load headerless numeric CSV files; each becomes a dense
// matrix variable available to the script.
//
// -ooc-budget sets a memory budget for read(): files larger than the budget
// load as block-paged, CLA-compressed out-of-core matrices backed by a
// buffer pool of that byte budget (with async block prefetch), instead of
// dense in-memory matrices. Scripts keep working unchanged as long as they
// only use the streaming-friendly operations (nrow, ncol, sum, mean,
// colSums, X %*% v, t(X) %*% v, t(X) %*% X).
//
// -stats enables the engine metrics registry for the run and prints a
// SystemML-style heavy-hitter table afterwards: each operator's call
// count, self time (excluding nested operators), total wall time, and
// share of the run. -cpuprofile/-memprofile write standard pprof profiles
// for `go tool pprof`.
//
// The lint subcommand runs the static semantic analyzer (shape/type
// inference plus program lints) and prints diagnostics as
// "path:line:col: severity[code]: message". It exits non-zero if any script
// has errors; with -strict, warnings also fail the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dmml/internal/dml"
	"dmml/internal/la"
	"dmml/internal/metrics"
	"dmml/internal/storage"
)

type csvBindings []string

func (c *csvBindings) String() string { return strings.Join(*c, ",") }

func (c *csvBindings) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*c = append(*c, v)
	return nil
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "lint" {
		os.Exit(runLint(os.Args[2:], os.Stdout, os.Stderr))
	}
	// All work happens in run so deferred teardown (profile flushing) runs
	// before the process exits; os.Exit in main would skip it.
	os.Exit(run())
}

func run() int {
	expr := flag.String("e", "", "evaluate this expression instead of a file")
	explain := flag.Bool("explain", false, "print the optimized program before running")
	noOpt := flag.Bool("no-opt", false, "disable the rewrite optimizer")
	fuse := flag.String("fuse", "compile", "fused-region backend: compile (closure kernels), interp (tile interpreter), off (no fusion)")
	statsFlag := flag.Bool("stats", false, "collect engine metrics and print a per-operator time table")
	statsTop := flag.Int("stats-top", 15, "rows in the -stats operator table (0 = all)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	oocBudget := flag.String("ooc-budget", "", "memory budget for read(): larger inputs stream as compressed out-of-core blocks (e.g. 64MB; empty = always dense)")
	var csvs csvBindings
	flag.Var(&csvs, "csv", "bind a headerless numeric CSV as a matrix: name=path (repeatable)")
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "dmml:", err)
		return 1
	}

	if *oocBudget != "" {
		budget, err := storage.ParseByteSize(*oocBudget)
		if err != nil {
			return fail(fmt.Errorf("-ooc-budget: %w", err))
		}
		spill, err := os.MkdirTemp("", "dmml-ooc-")
		if err != nil {
			return fail(err)
		}
		defer os.RemoveAll(spill)
		bp, err := storage.NewBufferPoolBytes(budget, spill)
		if err != nil {
			return fail(err)
		}
		dml.SetReadConfig(dml.ReadConfig{Pool: bp, Budget: budget, Prefetch: true})
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dmml:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dmml:", err)
			}
		}()
	}

	src := *expr
	if src == "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: dmml [-e expr] [-explain] [-no-opt] [-fuse compile|interp|off] [-stats] [-csv name=path] [-ooc-budget size] [script.dml]")
			return 2
		}
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return fail(err)
		}
		src = string(data)
	}

	env := dml.Env{}
	for _, bind := range csvs {
		name, path, _ := strings.Cut(bind, "=")
		m, err := loadMatrixCSV(path)
		if err != nil {
			return fail(fmt.Errorf("loading %s: %w", bind, err))
		}
		env[name] = dml.Matrix(m)
	}

	prog, err := dml.Parse(src)
	if err != nil {
		return fail(err)
	}
	fuseMode, err := dml.ParseFusionMode(*fuse)
	if err != nil {
		return fail(err)
	}
	if !*noOpt {
		prog = prog.OptimizeFusion(dml.ShapesFromEnv(env), fuseMode)
	}
	if *explain {
		fmt.Println("# optimized program:")
		fmt.Println(prog)
		fmt.Println("# ---")
	}
	if *statsFlag {
		metrics.Reset()
		metrics.Enable()
	}
	start := time.Now()
	val, evalStats, err := prog.Run(env)
	elapsed := time.Since(start)
	for _, w := range evalStats.Warnings {
		fmt.Fprintf(os.Stderr, "dmml: warning: %s\n", w.Format(src))
	}
	if err != nil {
		return fail(err)
	}
	fmt.Println(val)
	fmt.Fprintf(os.Stderr, "# flops=%.3g cells=%d cse_hits=%d\n",
		evalStats.Flops, evalStats.CellsAllocated, evalStats.CSEHits)
	if *statsFlag {
		printOpStats(os.Stderr, elapsed, *statsTop)
	}
	return 0
}

// loadMatrixCSV reads a headerless all-numeric CSV as a dense matrix.
func loadMatrixCSV(path string) (*la.Dense, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	// Sniff the column count from the first line.
	head := make([]byte, 64*1024)
	n, _ := fh.Read(head)
	first := string(head[:n])
	if i := strings.IndexByte(first, '\n'); i >= 0 {
		first = first[:i]
	}
	cols := len(strings.Split(strings.TrimSpace(first), ","))
	if _, err := fh.Seek(0, 0); err != nil {
		return nil, err
	}
	fields := make([]storage.Field, cols)
	for j := range fields {
		fields[j] = storage.Field{Name: fmt.Sprintf("c%d", j), Type: storage.Float64}
	}
	schema, err := storage.NewSchema(fields...)
	if err != nil {
		return nil, err
	}
	tbl, err := storage.ReadCSV(fh, schema, false)
	if err != nil {
		return nil, err
	}
	names := make([]string, cols)
	for j := range names {
		names[j] = fields[j].Name
	}
	return storage.ToMatrix(tbl, names)
}
