package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"

	"dmml/internal/dml"
	"dmml/internal/metrics"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/stats.golden from this run")

// statsRowRe matches one data row of the -stats table: rank, operator,
// count, then the time/share columns we mask.
var statsRowRe = regexp.MustCompile(`^\d+\s+(\S+)\s+(\d+)\s+\S+\s+\S+\s+\S+$`)

// normalizeStatsTable reduces the table to its deterministic content:
// operator names and call counts. Times (and hence self-time ranking and
// the share column) vary run to run, so rows are re-sorted by name.
func normalizeStatsTable(t *testing.T, table string) string {
	t.Helper()
	var rows []string
	for _, line := range strings.Split(strings.TrimRight(table, "\n"), "\n") {
		if strings.HasPrefix(line, "#") { // header
			continue
		}
		m := statsRowRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("-stats row does not match the expected shape: %q", line)
		}
		rows = append(rows, fmt.Sprintf("%s %s", m[1], m[2]))
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n") + "\n"
}

// TestStatsGolden pins the -stats table for a fixed script: which operators
// fire and how often is deterministic (parser, optimizer, and evaluator are
// deterministic), and the golden file documents it — including the rewrite
// wins (t(X)%*%X running as la.Gram, LICM keeping dml.op.%*% far below the
// loop's iteration count).
func TestStatsGolden(t *testing.T) {
	src, err := os.ReadFile("testdata/stats.dml")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := dml.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	prog = prog.Optimize(dml.ShapesFromEnv(nil))

	metrics.Reset()
	metrics.Enable()
	defer func() {
		metrics.Disable()
		metrics.Reset()
	}()
	if _, _, err := prog.Run(dml.Env{}); err != nil {
		t.Fatal(err)
	}

	table := metrics.FormatOpsTable(metrics.Ops(""), 0, time.Second)
	got := normalizeStatsTable(t, table)

	const goldenPath = "testdata/stats.golden"
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("-stats operator counts changed (rerun with -update-golden if intended)\ngot:\n%swant:\n%s", got, want)
	}
}
