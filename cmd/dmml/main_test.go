package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func lint(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := runLint(args, &out, &errOut)
	if errOut.Len() > 0 {
		t.Logf("stderr: %s", errOut.String())
	}
	return code, out.String()
}

func TestLintCleanFixture(t *testing.T) {
	code, out := lint(t, "-strict", "testdata/clean.dml")
	if code != 0 || out != "" {
		t.Fatalf("exit %d, output:\n%s", code, out)
	}
}

func TestLintBadFixture(t *testing.T) {
	code, out := lint(t, "testdata/bad.dml")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "testdata/bad.dml:4:7: error[dim-mismatch]") {
		t.Fatalf("diagnostic missing path:line:col anchor:\n%s", out)
	}
}

func TestLintParseError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "broken.dml")
	writeFile(t, path, "x = (1\n")
	code, out := lint(t, path)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, path+":1:") {
		t.Fatalf("parse diagnostic not anchored on the file:\n%s", out)
	}
}

func TestLintMissingFile(t *testing.T) {
	if code, _ := lint(t, "no/such/file.dml"); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if code, _ := lint(t); code != 2 {
		t.Fatalf("no-args exit = %d, want 2", code)
	}
}

// Every DML script shipped under examples/ must lint completely clean, even
// under -strict.
func TestLintExampleScripts(t *testing.T) {
	scripts, err := filepath.Glob("../../examples/*/scripts/*.dml")
	if err != nil {
		t.Fatal(err)
	}
	if len(scripts) == 0 {
		t.Fatal("no example scripts found")
	}
	for _, s := range scripts {
		code, out := lint(t, "-strict", s)
		if code != 0 {
			t.Errorf("%s: exit %d:\n%s", s, code, out)
		}
	}
}
