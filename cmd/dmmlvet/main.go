// Command dmmlvet runs the engine-specific static-analysis suite over the
// module and reports violations of the resource invariants the engine's
// performance story depends on:
//
//	scratchpair     pool.GetF64 buffers reach pool.PutF64 on all paths
//	spanpair        metrics spans/stopwatches are ended on all paths
//	instrumentinit  instruments register at package level or init() only
//	noalloc         //dmml:noalloc kernels contain no allocating construct
//	lockdiscipline  no mutex copied by value; Lock/Unlock balanced
//
// Findings print as file:line:col: [analyzer] message and any finding makes
// the exit status non-zero, so `dmmlvet ./...` is a blocking CI gate.
//
// Usage:
//
//	dmmlvet [-list] [-only analyzer[,analyzer]] [packages]
//
// Package patterns are ./... (everything, the default) or directory paths
// relative to the module root (./internal/la). The loader always
// type-checks the whole module — analyzer scoping only filters reporting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dmml/internal/vet"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dmmlvet [-list] [-only analyzers] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range vet.Analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := vet.Analyzers
	if *only != "" {
		byName := make(map[string]*vet.Analyzer)
		for _, a := range vet.Analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "dmmlvet: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	mod, err := vet.Load(cwd)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := selectPackages(mod, cwd, patterns)
	if err != nil {
		fatal(err)
	}

	findings := vet.Run(mod, pkgs, analyzers)
	for _, f := range findings {
		fmt.Println(relativize(f, mod.Root))
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dmmlvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// selectPackages resolves ./...-style patterns against the loaded module.
func selectPackages(mod *vet.Module, cwd string, patterns []string) ([]*vet.Package, error) {
	var out []*vet.Package
	seen := make(map[string]bool)
	add := func(p *vet.Package) {
		if !seen[p.Path] {
			seen[p.Path] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "all":
			for _, p := range sortedPkgs(mod) {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			dir := filepath.Join(cwd, strings.TrimSuffix(pat, "/..."))
			matched := false
			for _, p := range sortedPkgs(mod) {
				if p.Dir == dir || strings.HasPrefix(p.Dir, dir+string(filepath.Separator)) {
					add(p)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("no packages match %q", pat)
			}
		default:
			dir := filepath.Join(cwd, pat)
			matched := false
			for _, p := range sortedPkgs(mod) {
				if p.Dir == dir {
					add(p)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("no package in directory %q", pat)
			}
		}
	}
	return out, nil
}

func sortedPkgs(mod *vet.Module) []*vet.Package {
	paths := make([]string, 0, len(mod.Pkgs))
	for p := range mod.Pkgs {
		paths = append(paths, p)
	}
	// Deterministic order keeps CI output diffable.
	for i := 1; i < len(paths); i++ {
		for j := i; j > 0 && paths[j] < paths[j-1]; j-- {
			paths[j], paths[j-1] = paths[j-1], paths[j]
		}
	}
	out := make([]*vet.Package, len(paths))
	for i, p := range paths {
		out[i] = mod.Pkgs[p]
	}
	return out
}

// relativize shortens absolute file paths to module-relative for readable,
// machine-stable output.
func relativize(f vet.Finding, root string) string {
	s := f.String()
	if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		s = fmt.Sprintf("%s:%d:%d: [%s] %s", rel, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmmlvet:", err)
	os.Exit(2)
}
