// Command dmmlserve runs the batched online inference server over a
// modeldb registry. It listens on a TCP address speaking the compact
// binary protocol in internal/serve, coalesces concurrent predict
// requests per model into pooled batched kernels, and hot-reloads newly
// logged model versions without dropping in-flight requests.
//
// Usage:
//
//	dmmlserve [-addr :7077] [-db runs.json] [-demo] [-poll 2s]
//	          [-max-batch 256] [-linger 0] [-stats 5s]
//
// With -db the registry is loaded from a modeldb JSON snapshot; -demo
// logs two deterministic demo models (use it with loadtest). SIGINT or
// SIGTERM triggers a graceful drain: stop accepting, answer and flush
// every admitted request, then exit 0.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dmml/internal/metrics"
	"dmml/internal/modeldb"
	"dmml/internal/serve"
)

func main() {
	addr := flag.String("addr", ":7077", "TCP listen address")
	dbPath := flag.String("db", "", "modeldb JSON snapshot to serve from")
	demo := flag.Bool("demo", false, "log deterministic demo models (churn, linear)")
	poll := flag.Duration("poll", 2*time.Second, "model reload poll interval (0 disables)")
	maxBatch := flag.Int("max-batch", 256, "max rows per scoring kernel call")
	linger := flag.Duration("linger", 0, "fixed batch coalescing window (0: adaptive)")
	stats := flag.Duration("stats", 0, "print serving stats at this interval (0 disables)")
	flag.Parse()

	store, err := openStore(*dbPath, *demo)
	if err != nil {
		log.Fatalf("dmmlserve: %v", err)
	}
	if store.NumRuns() == 0 {
		log.Fatal("dmmlserve: registry is empty; pass -db or -demo")
	}

	s, err := serve.New(serve.Config{
		Addr:         *addr,
		Store:        store,
		MaxBatch:     *maxBatch,
		Linger:       *linger,
		PollInterval: *poll,
	})
	if err != nil {
		log.Fatalf("dmmlserve: %v", err)
	}
	log.Printf("dmmlserve: %d runs loaded, listening on %s", store.NumRuns(), s.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Print("dmmlserve: draining (in-flight requests will be answered)")
		s.Shutdown()
	}()

	if *stats > 0 {
		metrics.Enable()
		go statsLoop(*stats)
	}

	if err := s.Serve(); !serve.IsClosedErr(err) {
		log.Fatalf("dmmlserve: %v", err)
	}
	log.Print("dmmlserve: drained, bye")
}

func openStore(path string, demo bool) (*modeldb.Store, error) {
	store := modeldb.NewStore()
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if store, err = modeldb.Load(f); err != nil {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
	}
	if demo {
		if err := serve.LogDemoModels(store); err != nil {
			return nil, err
		}
	}
	return store, nil
}

func statsLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	var lastPred int64
	for range t.C {
		snap := metrics.TakeSnapshot()
		var req, pred, errs, batches int64
		for _, c := range snap.Counters {
			switch c.Name {
			case "serve.requests":
				req = c.Value
			case "serve.predictions":
				pred = c.Value
			case "serve.errors":
				errs = c.Value
			case "serve.batches":
				batches = c.Value
			}
		}
		qps := float64(pred-lastPred) / every.Seconds()
		lastPred = pred
		rowsPerBatch := 0.0
		var p99 time.Duration
		for _, h := range snap.Histograms {
			if h.Name == "serve.batch.rows" && h.Count > 0 {
				rowsPerBatch = h.Mean
			}
		}
		for _, tm := range snap.Timers {
			if tm.Name == "serve.Request" {
				p99 = time.Duration(tm.Quantile(0.99))
			}
		}
		log.Printf("dmmlserve: %.0f qps | req=%d ok=%d err=%d | batches=%d (%.1f rows/batch) | p99=%s",
			qps, req, pred, errs, batches, rowsPerBatch, p99)
	}
}
