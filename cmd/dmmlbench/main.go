// Command dmmlbench regenerates every experiment in EXPERIMENTS.md and
// prints the result tables.
//
// Usage:
//
//	dmmlbench                    # run everything at full scale
//	dmmlbench -quick             # 10x smaller workloads (CI-friendly)
//	dmmlbench -exp E1,E5         # only the named experiments
//	dmmlbench -snapshot out.json # also write per-experiment wall times as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dmml/internal/experiments"
)

// snapshotEntry is one experiment's wall time, written by -snapshot in a
// stable JSON form so runs can be diffed across commits.
type snapshotEntry struct {
	ID string  `json:"id"`
	Ms float64 `json:"ms"`
}

func main() {
	quick := flag.Bool("quick", false, "run at ~1/10 workload scale")
	expList := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	snapshot := flag.String("snapshot", "", "write per-experiment wall times (ms) to this JSON file")
	flag.Parse()

	fns := map[string]func(bool) (experiments.Table, error){
		"E1":     experiments.E1FactorizedVsMaterialized,
		"E2":     experiments.E2HamletRule,
		"E3":     experiments.E3CompressionRatio,
		"E4":     experiments.E4CompressedMV,
		"E5":     experiments.E5Rewrites,
		"E6":     experiments.E6BismarckParallel,
		"E7":     experiments.E7ModelSearch,
		"E8":     experiments.E8ColumbusReuse,
		"E9":     experiments.E9ParamServer,
		"E10":    experiments.E10SparseVsDense,
		"E11":    experiments.E11BufferPool,
		"E12":    experiments.E12ReuseAcrossCV,
		"E13":    experiments.E13PlannerChoice,
		"E14":    experiments.E14FaultTolerance,
		"E-ABL1": experiments.EKMeansPruning,
		"E-ABL2": experiments.EColumnCoCoding,
	}

	ids := experiments.Order
	if *expList != "" {
		ids = nil
		for _, id := range strings.Split(*expList, ",") {
			id = strings.TrimSpace(id)
			if _, ok := fns[id]; !ok {
				fmt.Fprintf(os.Stderr, "dmmlbench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	var times []snapshotEntry
	for _, id := range ids {
		start := time.Now()
		t, err := fns[id](*quick)
		elapsed := time.Since(start)
		fmt.Println(t)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmmlbench:", err)
			os.Exit(1)
		}
		times = append(times, snapshotEntry{ID: id, Ms: float64(elapsed.Microseconds()) / 1000})
	}

	if *snapshot != "" {
		data, err := json.MarshalIndent(times, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmmlbench:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*snapshot, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dmmlbench:", err)
			os.Exit(1)
		}
	}
}
