// Command dmmlbench regenerates every experiment in EXPERIMENTS.md and
// prints the result tables.
//
// Usage:
//
//	dmmlbench              # run everything at full scale
//	dmmlbench -quick       # 10x smaller workloads (CI-friendly)
//	dmmlbench -exp E1,E5   # only the named experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dmml/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run at ~1/10 workload scale")
	expList := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	flag.Parse()

	fns := map[string]func(bool) (experiments.Table, error){
		"E1":     experiments.E1FactorizedVsMaterialized,
		"E2":     experiments.E2HamletRule,
		"E3":     experiments.E3CompressionRatio,
		"E4":     experiments.E4CompressedMV,
		"E5":     experiments.E5Rewrites,
		"E6":     experiments.E6BismarckParallel,
		"E7":     experiments.E7ModelSearch,
		"E8":     experiments.E8ColumbusReuse,
		"E9":     experiments.E9ParamServer,
		"E10":    experiments.E10SparseVsDense,
		"E11":    experiments.E11BufferPool,
		"E12":    experiments.E12ReuseAcrossCV,
		"E13":    experiments.E13PlannerChoice,
		"E-ABL1": experiments.EKMeansPruning,
		"E-ABL2": experiments.EColumnCoCoding,
	}

	if *expList == "" {
		// Stream tables as each experiment finishes.
		for _, id := range experiments.Order {
			t, err := fns[id](*quick)
			fmt.Println(t)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dmmlbench:", err)
				os.Exit(1)
			}
		}
		return
	}
	for _, id := range strings.Split(*expList, ",") {
		id = strings.TrimSpace(id)
		fn, ok := fns[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "dmmlbench: unknown experiment %q\n", id)
			os.Exit(2)
		}
		t, err := fn(*quick)
		fmt.Println(t)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmmlbench:", err)
			os.Exit(1)
		}
	}
}
