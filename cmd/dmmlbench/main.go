// Command dmmlbench regenerates every experiment in EXPERIMENTS.md and
// prints the result tables.
//
// Usage:
//
//	dmmlbench                    # run everything at full scale
//	dmmlbench -quick             # 10x smaller workloads (CI-friendly)
//	dmmlbench -exp E1,E5         # only the named experiments
//	dmmlbench -snapshot out.json # also write per-experiment wall times as JSON
//	dmmlbench -metrics out.json  # also dump the engine metrics registry
//	dmmlbench -cpuprofile p.out  # write a pprof CPU profile of the run
//	dmmlbench -ooc-budget 8MB    # re-run the out-of-core experiments (E17)
//	                             # under a different buffer-pool budget
//
// -metrics enables the engine-wide metrics registry for the run and writes
// the full snapshot (counters, gauges, latency histograms from every
// instrumented layer: la, compress, pool, opt, paramserver, storage) as
// JSON — "-" writes to stdout. The CI bench guard consumes this dump
// together with the -snapshot wall times.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dmml/internal/dml"
	"dmml/internal/experiments"
	"dmml/internal/metrics"
	"dmml/internal/storage"
)

// snapshotEntry is one experiment's wall time, written by -snapshot in a
// stable JSON form so runs can be diffed across commits.
type snapshotEntry struct {
	ID string  `json:"id"`
	Ms float64 `json:"ms"`
}

func main() {
	// All work happens in run so deferred teardown (profile flushing) runs
	// before the process exits; os.Exit in main would skip it.
	os.Exit(run())
}

func run() int {
	quick := flag.Bool("quick", false, "run at ~1/10 workload scale")
	expList := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	fuse := flag.String("fuse", "compile", "fused-region backend for experiments: compile, interp, or off")
	snapshot := flag.String("snapshot", "", "write per-experiment wall times (ms) to this JSON file")
	metricsOut := flag.String("metrics", "", "write the engine metrics registry as JSON to this file ('-' for stdout)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	oocBudget := flag.String("ooc-budget", "", "override the out-of-core experiments' buffer-pool budget (e.g. 8MB; default: dense footprint / 4)")
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "dmmlbench:", err)
		return 1
	}

	if *oocBudget != "" {
		b, err := storage.ParseByteSize(*oocBudget)
		if err != nil {
			return fail(err)
		}
		experiments.SetOOCBudget(b)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dmmlbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dmmlbench:", err)
			}
		}()
	}
	fuseMode, err := dml.ParseFusionMode(*fuse)
	if err != nil {
		return fail(err)
	}
	dml.SetDefaultFusion(fuseMode)

	if *metricsOut != "" {
		metrics.Reset()
		metrics.Enable()
	}

	fns := map[string]func(bool) (experiments.Table, error){
		"E1":     experiments.E1FactorizedVsMaterialized,
		"E2":     experiments.E2HamletRule,
		"E3":     experiments.E3CompressionRatio,
		"E4":     experiments.E4CompressedMV,
		"E5":     experiments.E5Rewrites,
		"E6":     experiments.E6BismarckParallel,
		"E7":     experiments.E7ModelSearch,
		"E8":     experiments.E8ColumbusReuse,
		"E9":     experiments.E9ParamServer,
		"E10":    experiments.E10SparseVsDense,
		"E11":    experiments.E11BufferPool,
		"E12":    experiments.E12ReuseAcrossCV,
		"E13":    experiments.E13PlannerChoice,
		"E14":    experiments.E14FaultTolerance,
		"E15":    experiments.E15Fusion,
		"E16":    experiments.E16CompiledFusion,
		"E17":    experiments.E17OutOfCoreTraining,
		"E18":    experiments.E18FactorizedSnowflake,
		"E-ABL1": experiments.EKMeansPruning,
		"E-ABL2": experiments.EColumnCoCoding,
	}

	ids := experiments.Order
	if *expList != "" {
		ids = nil
		for _, id := range strings.Split(*expList, ",") {
			id = strings.TrimSpace(id)
			if _, ok := fns[id]; !ok {
				fmt.Fprintf(os.Stderr, "dmmlbench: unknown experiment %q\n", id)
				return 2
			}
			ids = append(ids, id)
		}
	}

	var times []snapshotEntry
	for _, id := range ids {
		start := time.Now()
		t, err := fns[id](*quick)
		elapsed := time.Since(start)
		fmt.Println(t)
		if err != nil {
			return fail(err)
		}
		times = append(times, snapshotEntry{ID: id, Ms: float64(elapsed.Microseconds()) / 1000})
	}

	if *snapshot != "" {
		data, err := json.MarshalIndent(times, "", "  ")
		if err != nil {
			return fail(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*snapshot, data, 0o644); err != nil {
			return fail(err)
		}
	}

	if *metricsOut != "" {
		var w io.Writer = os.Stdout
		if *metricsOut != "-" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				return fail(err)
			}
			defer f.Close()
			w = f
		}
		if err := metrics.WriteJSON(w); err != nil {
			return fail(err)
		}
	}
	return 0
}
