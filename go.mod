module dmml

go 1.22
